#include "psk/metrics/metrics.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "psk/table/group_by.h"

namespace psk {

Result<uint64_t> DiscernibilityMetric(const Table& masked,
                                      const std::vector<size_t>& key_indices,
                                      size_t suppressed, size_t total_rows) {
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(masked, key_indices));
  uint64_t dm = 0;
  for (const Group& group : fs.groups()) {
    dm += static_cast<uint64_t>(group.size()) * group.size();
  }
  dm += static_cast<uint64_t>(suppressed) * total_rows;
  return dm;
}

Result<double> NormalizedAvgGroupSize(const Table& masked,
                                      const std::vector<size_t>& key_indices,
                                      size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(masked, key_indices));
  if (fs.num_groups() == 0) return 0.0;
  double avg = static_cast<double>(masked.num_rows()) /
               static_cast<double>(fs.num_groups());
  return avg / static_cast<double>(k);
}

double NormalizedHeight(const LatticeNode& node,
                        const GeneralizationLattice& lattice) {
  int total = lattice.height();
  if (total == 0) return 0.0;
  return static_cast<double>(node.Height()) / static_cast<double>(total);
}

double Precision(const LatticeNode& node, const HierarchySet& hierarchies) {
  double loss_sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    int max_level = hierarchies.hierarchy(i).num_levels() - 1;
    if (max_level <= 0) continue;
    loss_sum += static_cast<double>(node.levels[i]) /
                static_cast<double>(max_level);
    ++counted;
  }
  if (counted == 0) return 1.0;
  return 1.0 - loss_sum / static_cast<double>(counted);
}

double SuppressionRatio(size_t suppressed, size_t total_rows) {
  if (total_rows == 0) return 0.0;
  return static_cast<double>(suppressed) / static_cast<double>(total_rows);
}

Result<double> NonUniformEntropyLoss(const Table& initial,
                                     const Table& masked,
                                     const HierarchySet& hierarchies,
                                     const LatticeNode& node) {
  std::vector<size_t> initial_keys = initial.schema().KeyIndices();
  std::vector<size_t> masked_keys = masked.schema().KeyIndices();
  if (initial_keys.size() != hierarchies.size() ||
      node.levels.size() != hierarchies.size() ||
      masked_keys.size() != initial_keys.size()) {
    return Status::InvalidArgument(
        "hierarchies/node do not match the schemas' key attributes");
  }
  if (initial.num_rows() != masked.num_rows()) {
    return Status::InvalidArgument(
        "initial and masked tables must be row-aligned (no suppression)");
  }
  double loss = 0.0;
  for (size_t slot = 0; slot < initial_keys.size(); ++slot) {
    if (node.levels[slot] == 0) continue;  // identity level, no loss
    // Ground-value and bucket frequencies over the initial column.
    std::unordered_map<Value, size_t, ValueHash> ground_freq;
    for (const Value& v : initial.column(initial_keys[slot])) {
      ++ground_freq[v];
    }
    std::unordered_map<Value, size_t, ValueHash> bucket_freq;
    std::unordered_map<Value, Value, ValueHash> up;
    for (const auto& [ground, freq] : ground_freq) {
      PSK_ASSIGN_OR_RETURN(
          Value bucket,
          hierarchies.hierarchy(slot).Generalize(ground, node.levels[slot]));
      bucket_freq[bucket] += freq;
      up.emplace(ground, std::move(bucket));
    }
    for (const Value& v : initial.column(initial_keys[slot])) {
      const Value& bucket = up.at(v);
      loss -= std::log2(static_cast<double>(ground_freq.at(v)) /
                        static_cast<double>(bucket_freq.at(bucket)));
    }
  }
  return loss;
}

Result<double> DisclosureRiskTupleFraction(
    const Table& masked, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(masked, key_indices));
  if (masked.num_rows() == 0) return 0.0;
  size_t at_risk = 0;
  for (const Group& group : fs.groups()) {
    bool disclosed = false;
    for (size_t col : confidential_indices) {
      std::unordered_set<Value, ValueHash> seen;
      for (size_t row : group.row_indices) {
        seen.insert(masked.Get(row, col));
        if (seen.size() > 1) break;
      }
      if (seen.size() == 1) {
        disclosed = true;
        break;
      }
    }
    if (disclosed) at_risk += group.size();
  }
  return static_cast<double>(at_risk) /
         static_cast<double>(masked.num_rows());
}

Result<double> ReidentificationRisk(const Table& masked,
                                    const std::vector<size_t>& key_indices) {
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(masked, key_indices));
  if (masked.num_rows() == 0) return 0.0;
  // Sum over tuples of 1/|G(t)| = number of groups; divide by n.
  return static_cast<double>(fs.num_groups()) /
         static_cast<double>(masked.num_rows());
}

}  // namespace psk
