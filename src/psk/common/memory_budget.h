#ifndef PSK_COMMON_MEMORY_BUDGET_H_
#define PSK_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "psk/common/status.h"

namespace psk {

/// Thread-safe byte accountant for one job's working memory.
///
/// A MemoryBudget is charged at the allocation seams the runtime owns —
/// EncodedTable::Build, the per-worker GroupByCodes scratch buffers, and
/// VerdictCache inserts — so a scheduler multiplexing many jobs onto one
/// process can see each job's footprint and act on it long before the
/// allocator or the OOM killer would.
///
/// Two thresholds with different roles:
///  - soft limit: purely advisory. Charges never fail against it; the
///    scheduler's watchdog polls over_soft() to drive the degradation
///    ladder (shrink the verdict cache, then fall back to the sequential
///    path).
///  - hard limit: a Charge that would move usage past it fails with
///    kResourceExhausted and records nothing, so the caller can unwind
///    (skip a cache insert, fail an encode) without the books drifting.
///
/// ForceExhausted() is the ladder's last rung: it makes every subsequent
/// Charge — and every BudgetEnforcer checkpoint whose RunBudget carries
/// this budget — fail with kResourceExhausted. Because that is a budget
/// code (IsBudgetExhausted), the running search absorbs it into a
/// best-so-far partial result and the fallback chain can still finish
/// with the budget-exempt full-suppression stage, which is exactly the
/// "cancel with partial results" semantics the scheduler wants, distinct
/// from a user CancelToken (kCancelled aborts the chain).
///
/// A default-constructed budget (both limits 0 = unlimited) never fails
/// a charge and never trips, so wiring the seams costs existing callers
/// nothing.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  MemoryBudget(uint64_t soft_limit_bytes, uint64_t hard_limit_bytes)
      : soft_limit_(soft_limit_bytes), hard_limit_(hard_limit_bytes) {}

  /// Records `bytes` of new usage. Fails with kResourceExhausted — and
  /// records nothing — when the budget was force-exhausted or the hard
  /// limit would be crossed. Failure is not sticky by itself: releasing
  /// memory (or shrinking a cache) lets later charges succeed again.
  Status Charge(uint64_t bytes);

  /// Returns `bytes` to the budget. Saturates at zero so a conservative
  /// caller double-releasing cannot wrap the counter.
  void Release(uint64_t bytes);

  /// Makes every subsequent Charge() and BudgetEnforcer checkpoint fail
  /// with kResourceExhausted. Sticky; used by the scheduler as the final
  /// degradation step for a job that stayed over quota.
  void ForceExhausted() { exhausted_.store(true, std::memory_order_relaxed); }
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  uint64_t bytes_used() const {
    return used_.load(std::memory_order_relaxed);
  }
  /// Largest usage ever observed; monotone, survives releases.
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  uint64_t soft_limit() const {
    return soft_limit_.load(std::memory_order_relaxed);
  }
  uint64_t hard_limit() const {
    return hard_limit_.load(std::memory_order_relaxed);
  }
  /// 0 means unlimited for both setters.
  void set_soft_limit(uint64_t bytes) {
    soft_limit_.store(bytes, std::memory_order_relaxed);
  }
  void set_hard_limit(uint64_t bytes) {
    hard_limit_.store(bytes, std::memory_order_relaxed);
  }

  /// True when a soft limit is configured and current usage exceeds it.
  bool over_soft() const {
    uint64_t soft = soft_limit();
    return soft != 0 && bytes_used() > soft;
  }

 private:
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> high_water_{0};
  std::atomic<uint64_t> soft_limit_{0};
  std::atomic<uint64_t> hard_limit_{0};
  std::atomic<bool> exhausted_{false};
};

/// RAII wrapper for a block charge against a MemoryBudget: reserve once
/// (e.g. the encoded table's footprint), resize as the underlying buffers
/// grow (per-worker scratch), release automatically on destruction.
/// Move-only. A reservation with no budget attached is a no-op, so the
/// charging seams stay zero-cost when no scheduler is involved.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  ~MemoryReservation() { Release(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(std::move(other.budget_)), bytes_(other.bytes_) {
    other.budget_.reset();
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = std::move(other.budget_);
      bytes_ = other.bytes_;
      other.budget_.reset();
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Releases any prior reservation, then charges `bytes` against
  /// `budget`. With a null budget this succeeds and remembers nothing.
  Status Reserve(std::shared_ptr<MemoryBudget> budget, uint64_t bytes);

  /// Adjusts the reservation to `new_bytes` by charging or releasing the
  /// delta. On charge failure the old reservation stays intact.
  Status Resize(uint64_t new_bytes);

  /// Returns the reserved bytes to the budget (idempotent).
  void Release();

  uint64_t bytes() const { return bytes_; }

 private:
  std::shared_ptr<MemoryBudget> budget_;
  uint64_t bytes_ = 0;
};

}  // namespace psk

#endif  // PSK_COMMON_MEMORY_BUDGET_H_
