#ifndef PSK_COMMON_STATUS_H_
#define PSK_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace psk {

/// Error category carried by a Status.
///
/// The library does not throw exceptions across its public API; every
/// operation that can fail returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  /// A run exceeded its wall-clock budget (RunBudget::deadline).
  kDeadlineExceeded = 9,
  /// A run was cooperatively cancelled through a CancelToken.
  kCancelled = 10,
  /// A run exceeded a resource cap (nodes expanded / rows materialized).
  kResourceExhausted = 11,
  /// Data written to durable storage could not be made durable (short
  /// write, failed fsync, torn file detected on read-back). Unlike
  /// kIOError, which covers transient open/read failures, kDataLoss means
  /// the bytes on disk must not be trusted.
  kDataLoss = 12,
  /// The operation failed because of a transient condition that is
  /// expected to clear on its own — a contended advisory lock, a syscall
  /// that kept returning EAGAIN past the bounded retry budget, a
  /// scheduler draining for shutdown. Unlike kResourceExhausted (a cap
  /// the caller configured was hit) the caller did nothing wrong;
  /// retrying the same request later may succeed.
  kUnavailable = 13,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString; nullopt for unrecognized names.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// Value-semantic error carrier, modeled after the Status idiom used by
/// RocksDB / Arrow / Abseil.
///
/// A Status is either OK (no error, empty message) or holds an error code
/// plus a human-readable message. Functions that can fail return Status and
/// must be checked by the caller; the PSK_RETURN_IF_ERROR macro (macros.h)
/// makes propagation terse.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code must
  /// not carry a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// True when the same request may succeed if retried later.
  ///
  /// kUnavailable is always retryable (transient by definition). A
  /// kResourceExhausted status is retryable only when the producer
  /// attached a retry-after hint — admission-control shedding does, a
  /// tripped node/row budget does not (retrying an identical over-budget
  /// run would just trip again).
  bool retryable() const {
    if (code_ == StatusCode::kUnavailable) return true;
    return code_ == StatusCode::kResourceExhausted &&
           retry_after_ms_.has_value();
  }

  /// Optional producer hint: how long the caller should wait before
  /// retrying, in milliseconds. Set by admission-control shedding and
  /// other load-dependent rejections; unset for plain errors.
  const std::optional<uint64_t>& retry_after_ms() const {
    return retry_after_ms_;
  }

  /// Fluent setter for the retry-after hint (milliseconds).
  Status&& WithRetryAfterMs(uint64_t delay_ms) && {
    retry_after_ms_ = delay_ms;
    return std::move(*this);
  }
  Status& WithRetryAfterMs(uint64_t delay_ms) & {
    retry_after_ms_ = delay_ms;
    return *this;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Two statuses are equal iff code, message, and retry metadata are
  /// equal.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_ &&
           a.retry_after_ms_ == b.retry_after_ms_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_;
  std::string message_;
  std::optional<uint64_t> retry_after_ms_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace psk

#endif  // PSK_COMMON_STATUS_H_
