#ifndef PSK_COMMON_RANDOM_H_
#define PSK_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "psk/common/check.h"

namespace psk {

/// Deterministic pseudo-random source used throughout the library.
///
/// All data generators and randomized tests take an explicit seed so that
/// every experiment in EXPERIMENTS.md is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    PSK_DCHECK(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PSK_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires a non-empty vector with a positive total weight.
  size_t PickWeighted(const std::vector<double>& weights) {
    PSK_DCHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) total += w;
    PSK_DCHECK(total > 0.0);
    double x = UniformDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (x < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Zipf-like rank sample over [0, n): probability of rank r proportional
  /// to 1 / (r + 1)^theta. theta = 0 is uniform. Requires n > 0.
  size_t Zipf(size_t n, double theta);

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace psk

#endif  // PSK_COMMON_RANDOM_H_
