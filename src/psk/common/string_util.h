#ifndef PSK_COMMON_STRING_UTIL_H_
#define PSK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "psk/common/result.h"

namespace psk {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Parses a base-10 signed integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view input);

/// Parses a base-10 unsigned integer covering the full uint64 range
/// (values >= 2^63 parse fine); rejects a leading '-'. The whole string
/// must be consumed.
Result<uint64_t> ParseUint64(std::string_view input);

/// Parses a floating point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view input);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace psk

#endif  // PSK_COMMON_STRING_UTIL_H_
