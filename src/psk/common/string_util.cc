#include "psk/common/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace psk {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         (input[begin] == ' ' || input[begin] == '\t' ||
          input[begin] == '\r' || input[begin] == '\n')) {
    ++begin;
  }
  while (end > begin &&
         (input[end - 1] == ' ' || input[end - 1] == '\t' ||
          input[end - 1] == '\r' || input[end - 1] == '\n')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<int64_t> ParseInt64(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) {
    return Status::InvalidArgument("cannot parse empty string as int64");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in integer: '" + buf +
                                   "'");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint64(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) {
    return Status::InvalidArgument("cannot parse empty string as uint64");
  }
  // strtoull silently negates "-1" instead of failing; reject signs here.
  if (buf[0] == '-' || buf[0] == '+') {
    return Status::InvalidArgument("sign not allowed in unsigned integer: '" +
                                   buf + "'");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in integer: '" + buf +
                                   "'");
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) {
    return Status::InvalidArgument("cannot parse empty string as double");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in double: '" + buf +
                                   "'");
  }
  // NaN/inf would break Value's strict weak ordering (and thereby every
  // sort-based algorithm), so they are rejected at the boundary.
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite double rejected: '" + buf +
                                   "'");
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace psk
