#include "psk/common/memory_budget.h"

#include <string>

namespace psk {

Status MemoryBudget::Charge(uint64_t bytes) {
  if (exhausted()) {
    return Status::ResourceExhausted(
        "memory budget force-exhausted by scheduler");
  }
  if (bytes == 0) return Status::OK();
  // Commit with a CAS loop so a rejected charge never becomes visible to
  // concurrent readers (a fetch_add/fetch_sub undo would transiently
  // overshoot and could trip another thread's hard-limit check).
  uint64_t current = used_.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t hard = hard_limit();
    uint64_t next = current + bytes;
    if (next < current) next = ~uint64_t{0};  // saturate on overflow
    if (hard != 0 && next > hard) {
      return Status::ResourceExhausted(
          "memory budget exhausted: " + std::to_string(current) + " used + " +
          std::to_string(bytes) + " requested > hard limit " +
          std::to_string(hard) + " bytes");
    }
    if (used_.compare_exchange_weak(current, next, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
      uint64_t seen = high_water_.load(std::memory_order_relaxed);
      while (seen < next && !high_water_.compare_exchange_weak(
                                seen, next, std::memory_order_relaxed,
                                std::memory_order_relaxed)) {
      }
      return Status::OK();
    }
  }
}

void MemoryBudget::Release(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t current = used_.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t next = current > bytes ? current - bytes : 0;
    if (used_.compare_exchange_weak(current, next, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

Status MemoryReservation::Reserve(std::shared_ptr<MemoryBudget> budget,
                                  uint64_t bytes) {
  Release();
  if (budget == nullptr) return Status::OK();
  Status charged = budget->Charge(bytes);
  if (!charged.ok()) return charged;
  budget_ = std::move(budget);
  bytes_ = bytes;
  return Status::OK();
}

Status MemoryReservation::Resize(uint64_t new_bytes) {
  if (budget_ == nullptr) return Status::OK();
  if (new_bytes > bytes_) {
    Status charged = budget_->Charge(new_bytes - bytes_);
    if (!charged.ok()) return charged;
  } else if (new_bytes < bytes_) {
    budget_->Release(bytes_ - new_bytes);
  }
  bytes_ = new_bytes;
  return Status::OK();
}

void MemoryReservation::Release() {
  if (budget_ != nullptr) budget_->Release(bytes_);
  budget_.reset();
  bytes_ = 0;
}

}  // namespace psk
