#ifndef PSK_COMMON_VERSION_H_
#define PSK_COMMON_VERSION_H_

/// Library version, bumped with every release.
#define PSK_VERSION_MAJOR 1
#define PSK_VERSION_MINOR 0
#define PSK_VERSION_PATCH 0
#define PSK_VERSION_STRING "1.0.0"

namespace psk {

/// Returns PSK_VERSION_STRING (for bindings that cannot read macros).
inline const char* Version() { return PSK_VERSION_STRING; }

}  // namespace psk

#endif  // PSK_COMMON_VERSION_H_
