#ifndef PSK_COMMON_JSON_WRITER_H_
#define PSK_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace psk {

/// Minimal streaming JSON emitter for machine-readable experiment output
/// (the benchmark harnesses can dump their tables as JSON next to the
/// human-readable text). Writer only — the library never parses JSON.
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("experiment").String("table8");
///   json.Key("rows").BeginArray();
///   json.BeginObject();
///   json.Key("k").Int(2);
///   json.Key("disclosures").Int(6);
///   json.EndObject();
///   json.EndArray();
///   json.EndObject();
///   std::string out = json.TakeString();
///
/// Misuse (mismatched Begin/End, value without key inside an object) is a
/// programming error and aborts in debug builds.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The finished document. The writer is left empty.
  std::string TakeString();

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void Raw(const std::string& text);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Escapes a string per RFC 8259: quotes, backslashes and control chars
/// below 0x20 are escaped; well-formed UTF-8 passes through verbatim;
/// each ill-formed byte (overlong encoding, surrogate code point, value
/// above U+10FFFF, stray continuation, truncated tail) is replaced with
/// U+FFFD so the output is always valid UTF-8 JSON.
std::string JsonEscape(const std::string& text);

}  // namespace psk

#endif  // PSK_COMMON_JSON_WRITER_H_
