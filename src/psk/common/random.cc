#include "psk/common/random.h"

#include <cmath>

namespace psk {

size_t Rng::Zipf(size_t n, double theta) {
  PSK_DCHECK(n > 0);
  if (theta <= 0.0) return Uniform(n);
  // Inverse-CDF sampling over the truncated harmonic distribution. n is
  // small in every generator (attribute cardinalities), so the linear scan
  // is fine.
  double norm = 0.0;
  for (size_t r = 0; r < n; ++r) {
    norm += 1.0 / std::pow(static_cast<double>(r + 1), theta);
  }
  double x = UniformDouble() * norm;
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    if (x < acc) return r;
  }
  return n - 1;
}

}  // namespace psk
