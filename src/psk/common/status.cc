#include "psk/common/status.h"

namespace psk {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (int raw = static_cast<int>(StatusCode::kOk);
       raw <= static_cast<int>(StatusCode::kUnavailable); ++raw) {
    StatusCode code = static_cast<StatusCode>(raw);
    if (StatusCodeToString(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  if (retry_after_ms_.has_value()) {
    result += " [retry-after ";
    result += std::to_string(*retry_after_ms_);
    result += "ms]";
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace psk
