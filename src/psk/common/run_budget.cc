#include "psk/common/run_budget.h"

#include <algorithm>
#include <string>

namespace psk {
namespace {

std::string LimitMessage(const char* what, uint64_t used, uint64_t limit) {
  return std::string("budget exhausted: ") + what + " (" +
         std::to_string(used) + " > limit " + std::to_string(limit) + ")";
}

}  // namespace

BudgetEnforcer::BudgetEnforcer(RunBudget budget)
    : budget_(std::move(budget)),
      start_(std::chrono::steady_clock::now()) {
  if (budget_.deadline.has_value()) {
    // start_ + deadline is computed in the clock's native (nanosecond)
    // representation, which milliseconds::max() overflows by six decimal
    // orders; clamp in the milliseconds domain first so the expiry point
    // saturates at the far end of the clock instead of wrapping into the
    // past and tripping the deadline on the first Check().
    auto representable = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::time_point::max() - start_);
    deadline_point_ = start_ + std::min(*budget_.deadline, representable);
  }
}

Status BudgetEnforcer::Trip(Status status) {
  tripped_code_.store(static_cast<int>(status.code()),
                      std::memory_order_relaxed);
  return status;
}

Status BudgetEnforcer::Charge(uint64_t nodes, uint64_t rows) {
  // Tick the heartbeat before any limit check: even a charge that is
  // about to fail proves the job is alive and polling its budget, which
  // is exactly what the scheduler watchdog wants to distinguish from a
  // hung job.
  if (budget_.heartbeat != nullptr) {
    budget_.heartbeat->fetch_add(1, std::memory_order_relaxed);
  }
  int tripped = tripped_code_.load(std::memory_order_relaxed);
  if (tripped != 0) {
    return Status(static_cast<StatusCode>(tripped),
                  "budget already exhausted earlier in this run");
  }
  uint64_t total_nodes =
      nodes_.fetch_add(nodes, std::memory_order_relaxed) + nodes;
  uint64_t total_rows =
      rows > 0 ? rows_.fetch_add(rows, std::memory_order_relaxed) + rows
               : rows_.load(std::memory_order_relaxed);
  if (budget_.max_nodes_expanded.has_value() &&
      total_nodes > *budget_.max_nodes_expanded) {
    return Trip(Status::ResourceExhausted(LimitMessage(
        "lattice nodes expanded", total_nodes, *budget_.max_nodes_expanded)));
  }
  if (budget_.max_rows_materialized.has_value() &&
      total_rows > *budget_.max_rows_materialized) {
    return Trip(Status::ResourceExhausted(LimitMessage(
        "rows materialized", total_rows, *budget_.max_rows_materialized)));
  }
  if (budget_.cancel == nullptr && !budget_.deadline.has_value() &&
      budget_.memory == nullptr) {
    return Status::OK();
  }
  uint64_t check = checks_.fetch_add(1, std::memory_order_relaxed);
  if (budget_.check_interval > 1 && check % budget_.check_interval != 0) {
    return Status::OK();
  }
  return Check();
}

Status BudgetEnforcer::Check() {
  if (budget_.heartbeat != nullptr) {
    budget_.heartbeat->fetch_add(1, std::memory_order_relaxed);
  }
  int tripped = tripped_code_.load(std::memory_order_relaxed);
  if (tripped != 0) {
    return Status(static_cast<StatusCode>(tripped),
                  "budget already exhausted earlier in this run");
  }
  if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
    return Trip(Status::Cancelled("run cancelled by caller"));
  }
  if (budget_.memory != nullptr && budget_.memory->exhausted()) {
    return Trip(Status::ResourceExhausted(
        "memory budget exhausted (" +
        std::to_string(budget_.memory->bytes_used()) + " bytes in use)"));
  }
  if (budget_.deadline.has_value() &&
      std::chrono::steady_clock::now() >= deadline_point_) {
    return Trip(Status::DeadlineExceeded(
        "deadline of " + std::to_string(budget_.deadline->count()) +
        " ms exceeded after " + std::to_string(Elapsed().count()) + " ms"));
  }
  return Status::OK();
}

std::chrono::milliseconds BudgetEnforcer::Elapsed() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_);
}

std::optional<std::chrono::milliseconds> BudgetEnforcer::Remaining() const {
  if (!budget_.deadline.has_value()) return std::nullopt;
  std::chrono::milliseconds left = *budget_.deadline - Elapsed();
  return left.count() > 0 ? left : std::chrono::milliseconds(0);
}

bool IsBudgetExhausted(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

bool IsBudgetExhausted(const Status& status) {
  return IsBudgetExhausted(status.code());
}

}  // namespace psk
