#ifndef PSK_COMMON_RESULT_H_
#define PSK_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "psk/common/check.h"
#include "psk/common/macros.h"
#include "psk/common/status.h"

namespace psk {

/// Result<T> holds either a value of type T or a non-OK Status explaining
/// why the value could not be produced (the StatusOr idiom).
///
/// Typical use:
///
///   Result<Table> table = ReadCsv(path, schema);
///   if (!table.ok()) return table.status();
///   Use(*table);
///
/// or, inside a function returning Status/Result, with the macros from
/// macros.h:
///
///   PSK_ASSIGN_OR_RETURN(Table table, ReadCsv(path, schema));
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit, so `return value;`
  /// works in functions returning Result<T>).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed Result from a non-OK status (implicit, so
  /// `return Status::InvalidArgument(...)` works). Passing an OK status is
  /// a programming error.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    PSK_CHECK(!std::get<Status>(data_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Value accessors. Calling these on a failed Result aborts; check ok()
  /// first (or use PSK_ASSIGN_OR_RETURN).
  const T& value() const& {
    PSK_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    PSK_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    PSK_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

}  // namespace psk

#endif  // PSK_COMMON_RESULT_H_
