#ifndef PSK_COMMON_MACROS_H_
#define PSK_COMMON_MACROS_H_

#include <utility>

/// Status/Result propagation helpers.
///
///   PSK_RETURN_IF_ERROR(DoWork());
///   PSK_ASSIGN_OR_RETURN(auto table, ReadCsv(path, schema));
///
/// Both expand to an early `return` of the error status when the expression
/// fails, so they may only be used inside functions returning Status or
/// Result<T>.

#define PSK_INTERNAL_CONCAT_IMPL(a, b) a##b
#define PSK_INTERNAL_CONCAT(a, b) PSK_INTERNAL_CONCAT_IMPL(a, b)

#define PSK_RETURN_IF_ERROR(expr)                       \
  do {                                                  \
    ::psk::Status psk_internal_status = (expr);         \
    if (!psk_internal_status.ok()) {                    \
      return psk_internal_status;                       \
    }                                                   \
  } while (false)

#define PSK_ASSIGN_OR_RETURN(lhs, expr)                                   \
  PSK_ASSIGN_OR_RETURN_IMPL(PSK_INTERNAL_CONCAT(psk_result_, __LINE__),   \
                            lhs, expr)

#define PSK_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) {                                \
    return result.status();                          \
  }                                                  \
  lhs = std::move(result).value()

#endif  // PSK_COMMON_MACROS_H_
