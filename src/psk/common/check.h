#ifndef PSK_COMMON_CHECK_H_
#define PSK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Fatal assertion macros.
///
/// PSK_CHECK fires in all build modes and is reserved for invariants whose
/// violation means the process state is unusable (programming errors).
/// Recoverable conditions must be reported through Status instead.
#define PSK_CHECK(condition)                                                \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PSK_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define PSK_CHECK_MSG(condition, msg)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PSK_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, msg);                    \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define PSK_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define PSK_DCHECK(condition) PSK_CHECK(condition)
#endif

#endif  // PSK_COMMON_CHECK_H_
