#include "psk/common/durable_file.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "psk/common/failpoint.h"

namespace psk {
namespace {

// Durability steps remaining before the process SIGKILLs itself; negative
// disables the hook. Relaxed ordering suffices — the tests arm it before
// starting the run, from the same thread.
std::atomic<int64_t> g_fault_countdown{-1};

// One durability step: decrements the countdown and, at zero, delivers an
// un-catchable SIGKILL so the crash-injection tests can stop the process
// at this exact point in the commit protocol.
void FaultPoint() {
  if (g_fault_countdown.load(std::memory_order_relaxed) < 0) return;
  if (g_fault_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    kill(getpid(), SIGKILL);
  }
}

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}


// Transient retries performed across all durable-file syscalls since
// process start (or the last test reset). Exported so callers (the jobs
// layer records it on the RunTrace) can see that a run succeeded only by
// riding out EINTR/EAGAIN storms.
std::atomic<uint64_t> g_transient_retries{0};

// An EINTR/EAGAIN storm that outlasts this many retries of one syscall is
// treated as a real failure — bounded so an interposed signal flood can
// never wedge a commit forever.
constexpr int kMaxTransientRetries = 64;

bool IsTransientErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

// EINTR retries immediately (the syscall was merely interrupted);
// EAGAIN-class waits briefly on the shared exponential curve, capped at
// 10 ms so a busy device gets breathing room without adding seconds to a
// commit.
void TransientBackoff(int err, int attempt) {
  if (err == EINTR) return;
  std::this_thread::sleep_for(RetryBackoffDelay(
      attempt, std::chrono::milliseconds(1), std::chrono::milliseconds(10)));
}

// Classifies a syscall failure whose errno is still live: a transient
// errno here means the bounded retry loop already rode out its full
// budget and the condition persisted, which is kUnavailable (the caller
// may retry the whole operation later); anything else is a plain
// kIOError. Durability-compromising failures (short write, failed fsync)
// stay kDataLoss regardless — retrying cannot restore trust in bytes
// that may or may not have reached storage.
Status SyscallFailure(const std::string& what, const std::string& path) {
  if (IsTransientErrno(errno)) {
    return Status::Unavailable(
        Errno(what + " (transient retries exhausted)", path));
  }
  return Status::IOError(Errno(what, path));
}

// Runs syscall `op` (negative result = failure with errno) behind the
// failpoint `site`, retrying transient failures — injected or real — with
// bounded backoff. Non-transient errnos and retry exhaustion return the
// failure to the caller's normal error path.
template <typename Op>
auto RetrySyscall(const char* site, Op op) -> decltype(op()) {
  for (int attempt = 0;; ++attempt) {
    decltype(op()) rc;
    if (PSK_FAIL_POINT_SYSCALL(site)) {
      rc = -1;
    } else {
      rc = op();
    }
    if (rc >= 0) return rc;
    if (!IsTransientErrno(errno) || attempt >= kMaxTransientRetries) {
      return rc;
    }
    g_transient_retries.fetch_add(1, std::memory_order_relaxed);
    TransientBackoff(errno, attempt);
  }
}

// Writes all of `contents` to `fd`, retrying partial writes and transient
// failures. A zero-byte write for a non-empty remainder is reported as a
// failure (EIO) rather than looped on: no forward progress means the fd
// is wedged, and treating it as success would commit a truncated file.
bool WriteAll(int fd, std::string_view contents) {
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = RetrySyscall("durable.write.write", [&] {
      return write(fd, contents.data() + written, contents.size() - written);
    });
    if (n < 0) return false;
    if (n == 0) {
      errno = EIO;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// fsyncs the directory containing `path` so a rename inside it is durable.
Status SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = RetrySyscall("durable.dir.open", [&] {
    return open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  });
  if (fd < 0) {
    return SyscallFailure("cannot open directory", dir);
  }
  int rc = RetrySyscall("durable.dir.fsync", [&] { return fsync(fd); });
  close(fd);
  if (rc != 0) {
    return Status::DataLoss(Errno("cannot fsync directory", dir));
  }
  return Status::OK();
}

}  // namespace

std::chrono::milliseconds RetryBackoffDelay(int attempt,
                                            std::chrono::milliseconds base,
                                            std::chrono::milliseconds cap) {
  if (attempt < 0) attempt = 0;
  if (base.count() <= 0) return std::chrono::milliseconds(0);
  std::chrono::milliseconds delay = base;
  // Double per attempt, saturating at the cap (also guards overflow: once
  // past the cap the loop exits before the shift can wrap).
  for (int i = 0; i < attempt && delay < cap; ++i) {
    delay += delay;
  }
  return std::min(delay, cap);
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = RetrySyscall("durable.read.open",
                        [&] { return open(path.c_str(), O_RDONLY); });
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return SyscallFailure("cannot open file", path);
  }
  std::string out;
  char buffer[1 << 16];
  while (true) {
    ssize_t n = RetrySyscall("durable.read.read", [&] {
      return read(fd, buffer, sizeof(buffer));
    });
    if (n < 0) {
      close(fd);
      return SyscallFailure("error reading", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  // mkstemp gives every call its own staging file: two writers racing on
  // the same target each commit a complete file (last rename wins) instead
  // of interleaving write/fsync/rename on one shared ".tmp" path.
  std::string tmp = path + ".tmp.XXXXXX";
  int fd = PSK_FAIL_POINT_SYSCALL("durable.write.mkstemp")
               ? -1
               : mkstemp(tmp.data());
  if (fd < 0) {
    return Status::IOError(Errno("cannot create temp file", tmp));
  }
  // Advisory exclusive lock marks the staging file as live for the whole
  // write..rename window (the fd stays open until after the rename). The
  // kernel drops the lock automatically if the process dies, so
  // CleanStaleStaging can tell a crash-orphaned temp (lockable) from one
  // a concurrent writer is still filling (locked) without any registry.
  // flock is deliberately outside the transient-retry wrapper: with
  // LOCK_NB, EWOULDBLOCK is the *meaningful* contention signal, not a
  // transient to ride out.
  if (PSK_FAIL_POINT_SYSCALL("durable.write.flock") ||
      flock(fd, LOCK_EX | LOCK_NB) != 0) {
    Status status = Status::IOError(Errno("cannot lock temp file", tmp));
    close(fd);
    unlink(tmp.c_str());
    return status;
  }
  if (PSK_FAIL_POINT_SYSCALL("durable.write.chmod") ||
      fchmod(fd, 0644) != 0) {
    Status status = Status::IOError(Errno("cannot chmod temp file", tmp));
    close(fd);
    unlink(tmp.c_str());
    return status;
  }
  if (!WriteAll(fd, contents)) {
    Status status = Status::DataLoss(Errno("short write to", tmp));
    close(fd);
    unlink(tmp.c_str());
    return status;
  }
  FaultPoint();  // bytes written, not yet durable
  if (RetrySyscall("durable.write.fsync", [&] { return fsync(fd); }) != 0) {
    Status status = Status::DataLoss(Errno("cannot fsync", tmp));
    close(fd);
    unlink(tmp.c_str());
    return status;
  }
  FaultPoint();  // temp durable, final path still old
  if (PSK_FAIL_POINT_SYSCALL("durable.write.rename") ||
      rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IOError(Errno("cannot rename over", path));
    close(fd);
    unlink(tmp.c_str());
    return status;
  }
  // Close (and so unlock) only after the rename: a temp that is still
  // lockable is therefore always an orphan, never a committed-any-moment
  // file. The bytes are already fsync'd and the name already moved, so a
  // close error here cannot un-commit anything — ignore it.
  close(fd);
  FaultPoint();  // renamed, directory entry not yet durable
  return SyncParentDirectory(path);
}

Status RemoveFileDurably(const std::string& path) {
  bool failed = PSK_FAIL_POINT_SYSCALL("durable.remove.unlink") ||
                unlink(path.c_str()) != 0;
  if (failed && errno != ENOENT) {
    return Status::IOError(Errno("cannot remove", path));
  }
  FaultPoint();  // unlinked, directory entry removal not yet durable
  return SyncParentDirectory(path);
}

Result<size_t> CleanStaleStaging(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return size_t{0};  // nothing there, nothing stale
    return Status::IOError(Errno("cannot open directory", dir));
  }
  size_t reaped = 0;
  while (struct dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    // Match the AtomicWriteFile staging pattern: "<target>.tmp." followed
    // by exactly the six characters mkstemp substituted for XXXXXX.
    size_t marker = name.rfind(".tmp.");
    if (marker == std::string::npos || name.size() != marker + 5 + 6) {
      continue;
    }
    bool suffix_ok = true;
    for (size_t i = marker + 5; i < name.size(); ++i) {
      unsigned char c = static_cast<unsigned char>(name[i]);
      if (!std::isalnum(c)) {
        suffix_ok = false;
        break;
      }
    }
    if (!suffix_ok) continue;
    std::string path = dir + "/" + name;
    int fd = open(path.c_str(), O_RDONLY | O_NOFOLLOW);
    if (fd < 0) continue;  // vanished or not a plain file — not ours to reap
    struct stat st;
    if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      close(fd);
      continue;
    }
    // A live AtomicWriteFile holds LOCK_EX on its staging file until after
    // the rename; if we can take the lock, the writer is gone (crashed or
    // errored out before its own unlink) and the temp is garbage.
    if (flock(fd, LOCK_EX | LOCK_NB) != 0) {
      close(fd);
      continue;  // a concurrent writer is mid-commit — leave it alone
    }
    if (unlink(path.c_str()) == 0) ++reaped;
    close(fd);
  }
  closedir(d);
  if (reaped > 0) {
    // Make the unlinks durable; piggyback on the existing parent-dir sync
    // by handing it a path *inside* `dir`.
    Status synced = SyncParentDirectory(dir + "/.");
    if (!synced.ok()) return synced;
  }
  return reaped;
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  for (const char* p = path.c_str();; ++p) {
    if (*p != '/' && *p != '\0') {
      partial.push_back(*p);
      continue;
    }
    if (!partial.empty() && mkdir(partial.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return Status::IOError(Errno("cannot create directory", partial));
    }
    if (*p == '\0') break;
    partial.push_back('/');
  }
  return Status::OK();
}

void TestOnlySetDurableFaultCountdown(int64_t countdown) {
  g_fault_countdown.store(countdown, std::memory_order_relaxed);
}

uint64_t DurableFileTransientRetries() {
  return g_transient_retries.load(std::memory_order_relaxed);
}

void TestOnlyResetDurableFileStats() {
  g_transient_retries.store(0, std::memory_order_relaxed);
}

}  // namespace psk
