#ifndef PSK_COMMON_THREAD_POOL_H_
#define PSK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psk {

/// Shared worker pool for the parallel node sweeps of the lattice engines.
///
/// One process-wide pool (Shared()) serves every search, so concurrent
/// anonymization runs share a bounded set of OS threads instead of each
/// spawning its own (the previous std::async-per-shard approach). The pool
/// is created on first use and intentionally leaked — worker threads must
/// not be joined during static destruction.
///
/// The only scheduling primitive the engines need is ParallelFor: a
/// dynamically load-balanced index loop in which the *calling thread
/// participates* as worker 0. Because the caller always makes progress,
/// ParallelFor cannot deadlock even when the pool is saturated by other
/// runs (or when invoked, transitively, from a pool thread): helpers that
/// never get scheduled simply contribute nothing.
class ThreadPool {
 public:
  /// `num_threads` background workers (0 is allowed: every ParallelFor then
  /// runs entirely on the calling thread).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// The process-wide pool. Sized so that SearchOptions::threads up to 8
  /// maps to distinct workers even on small machines:
  /// max(hardware_concurrency, 8) - 1 background threads (the caller is
  /// the extra worker).
  static ThreadPool& Shared();

  /// Runs fn(worker, index) for every index in [0, count), using up to
  /// `workers` concurrent workers (clamped to [1, count]). Worker 0 is the
  /// calling thread; workers 1..w-1 are pool threads. Each worker id is
  /// held by exactly one thread at a time, so fn may keep per-worker
  /// mutable state (e.g. one NodeEvaluator per worker) without locking.
  /// Indices are handed out dynamically in increasing order; blocks until
  /// every index has been processed.
  ///
  /// Exception safety: if fn throws on any worker, the first exception is
  /// captured, remaining indices are abandoned, every helper retires
  /// normally (the completion latch always resolves), and the exception
  /// is rethrown on the calling thread. Which indices ran before the
  /// abort is unspecified, so throwing fns forfeit the engines'
  /// determinism contract — the engines therefore report failures via
  /// Status, and this path only catches genuinely exceptional escapes.
  void ParallelFor(size_t count, size_t workers,
                   const std::function<void(size_t worker, size_t index)>& fn);

  /// Instantaneous task-queue length; racy by nature — for trace timings
  /// only, never for scheduling decisions.
  size_t ApproxQueueDepth() const;

  /// Number of ParallelFor calls currently in flight on this pool (each
  /// call counts itself for its whole duration). Racy by nature; a
  /// fair-share signal, not a synchronization primitive.
  size_t ActiveRegions() const {
    return active_regions_.load(std::memory_order_relaxed);
  }

  /// Fair-share advice: how many workers a sweep that *wants* `requested`
  /// should actually use given the other ParallelFor regions currently on
  /// the pool. With no competition the request is granted in full; with R
  /// other regions the grant shrinks toward an equal split of the pool
  /// (never below 1 — the caller always participates). Advisory only:
  /// the engines' determinism contract guarantees byte-identical results
  /// for any worker count, so acting on a racy read is safe.
  size_t FairShareWorkers(size_t requested) const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  std::atomic<size_t> active_regions_{0};
};

}  // namespace psk

#endif  // PSK_COMMON_THREAD_POOL_H_
