#ifndef PSK_COMMON_DURABLE_FILE_H_
#define PSK_COMMON_DURABLE_FILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "psk/common/result.h"

namespace psk {

/// Shared bounded-exponential-backoff policy: delay for retry `attempt`
/// (0-based) is min(cap, base * 2^attempt), saturating instead of
/// overflowing. This is the one retry curve the runtime uses everywhere a
/// transient failure is worth waiting out — the durable-file syscall
/// loop, the job-dir advisory-lock wait, and the scheduler's re-dispatch
/// of transiently failed jobs — so tuning it tunes them all coherently.
std::chrono::milliseconds RetryBackoffDelay(int attempt,
                                            std::chrono::milliseconds base,
                                            std::chrono::milliseconds cap);

/// Reads a whole file into a string. kNotFound when the path does not
/// exist, kUnavailable when a transient (EINTR/EAGAIN-class) condition
/// persisted past the bounded retry budget — the caller may retry the
/// whole read later — and kIOError for any other failure.
Result<std::string> ReadFileToString(const std::string& path);

/// True iff `path` exists (any file type).
bool FileExists(const std::string& path);

/// Atomically replaces `path` with `contents`: the bytes are written to a
/// unique `path.tmp.XXXXXX` staging file (mkstemp — concurrent writers of
/// the same target never share a temp file), fsync'd, renamed over `path`,
/// and the containing directory is fsync'd so the rename itself is
/// durable. A reader (or a process that crashes and restarts) therefore
/// observes either the old file or the new one, never a torn mixture; a
/// crash mid-write leaves at most a stale `path.tmp.XXXXXX`, which is
/// harmless (it is never read and never renamed).
///
/// Returns kIOError when the temp file cannot be created or renamed and
/// kDataLoss when the bytes could not be made durable (short write or
/// failed fsync) — on kDataLoss the temp file is removed so a truncated
/// artifact cannot be mistaken for a committed one.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Durably removes `path`: unlinks it (OK when it does not exist) and
/// fsyncs the containing directory so the removal survives a crash — the
/// counterpart of AtomicWriteFile for retiring stale artifacts.
Status RemoveFileDurably(const std::string& path);

/// Creates the directory (and any missing parents). OK when it already
/// exists.
Status EnsureDirectory(const std::string& path);

/// Reaps staging files (`*.tmp.XXXXXX`) orphaned in `dir` by a crash
/// between mkstemp and rename. Every live AtomicWriteFile holds an
/// advisory exclusive lock on its staging file for the whole
/// write..rename window, so only temps whose lock can be taken — i.e.
/// whose writer is gone — are unlinked; temps a concurrent writer is
/// still filling are left untouched. Returns the number of files
/// removed (0 when `dir` does not exist). Call at job startup, before
/// any writer of the directory is running or while writers are mid-
/// commit — both are safe.
Result<size_t> CleanStaleStaging(const std::string& dir);

/// Crash-injection hook for the fault-tolerance tests: after `countdown`
/// more durability steps (a step is one write/fsync/rename inside
/// AtomicWriteFile), the process kills itself with SIGKILL — an
/// un-catchable stop at a precise point in the commit protocol. Pass a
/// negative value (the default state) to disable. Test-only; never enable
/// in production code.
void TestOnlySetDurableFaultCountdown(int64_t countdown);

/// Process-lifetime count of transient (EINTR / EAGAIN-class) syscall
/// retries absorbed by the durable-file layer. Every open/read/write/fsync
/// in this file rides out up to a bounded number of transient failures
/// with backoff before reporting an error; this counter makes those
/// degraded-but-successful runs observable (the jobs layer exports the
/// per-run delta onto the RunTrace as the `io_retries` timing).
uint64_t DurableFileTransientRetries();

/// Resets the transient-retry counter (test isolation only).
void TestOnlyResetDurableFileStats();

}  // namespace psk

#endif  // PSK_COMMON_DURABLE_FILE_H_
