#include "psk/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "psk/common/failpoint.h"

namespace psk {
namespace {

// State shared between one ParallelFor call and its helper tasks. Owned by
// shared_ptr so a helper that outlives the call's stack frame (it cannot —
// the call blocks — but the type system doesn't know that) stays valid.
struct ForState {
  std::atomic<size_t> next{0};
  size_t count = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  // First exception thrown by fn on any worker; remaining indices are
  // abandoned (abort) and the exception is rethrown on the calling
  // thread once every helper has retired — helpers never terminate the
  // process and never leave the caller blocked on the completion latch.
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex mu;
  std::condition_variable done;
  size_t live_helpers = 0;
};

void DrainIndices(ForState& state, size_t worker) {
  while (true) {
    size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.count) return;
    if (state.abort.load(std::memory_order_relaxed)) return;
    try {
      // Torture seam: a pool worker dying mid-sweep is modeled as a
      // thrown task — it takes the same abort/rethrow path a real task
      // failure would, so the caller sees one clean exception and the
      // pool survives.
      PSK_FAIL_POINT_THROW("threadpool.task");
      (*state.fn)(worker, i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.first_error) state.first_error = std::current_exception();
      }
      state.abort.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    size_t workers = std::max<size_t>(hw, 8) - 1;
    return new ThreadPool(workers);
  }();
  return *pool;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    size_t count, size_t workers,
    const std::function<void(size_t worker, size_t index)>& fn) {
  if (count == 0) return;
  // Count this region for the whole call so concurrent sweeps consulting
  // FairShareWorkers() see each other. RAII because fn may throw.
  active_regions_.fetch_add(1, std::memory_order_relaxed);
  struct RegionGuard {
    std::atomic<size_t>* counter;
    ~RegionGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
  } region_guard{&active_regions_};
  workers = std::min(std::max<size_t>(workers, 1), count);
  size_t helpers = std::min(workers - 1, num_threads());

  auto state = std::make_shared<ForState>();
  state->count = count;
  state->fn = &fn;
  state->live_helpers = helpers;

  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t h = 1; h <= helpers; ++h) {
        queue_.push_back([state, h] {
          DrainIndices(*state, h);
          std::lock_guard<std::mutex> lock(state->mu);
          if (--state->live_helpers == 0) state->done.notify_one();
        });
      }
    }
    cv_.notify_all();
  }

  DrainIndices(*state, /*worker=*/0);

  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] { return state->live_helpers == 0; });
  }
  // Every helper has retired (or none was scheduled), so first_error is
  // stable without the lock; rethrow the first failure on the caller.
  if (state->first_error) std::rethrow_exception(state->first_error);
}

size_t ThreadPool::ApproxQueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t ThreadPool::FairShareWorkers(size_t requested) const {
  if (requested <= 1) return std::max<size_t>(requested, 1);
  size_t others = active_regions_.load(std::memory_order_relaxed);
  if (others == 0) return requested;
  // `others` regions are already sweeping; this caller makes others + 1.
  // Grant an equal split of the whole pool (background threads plus the
  // caller itself), rounded up so small pools don't starve everyone down
  // to sequential, but never more than was requested.
  size_t capacity = num_threads() + 1;
  size_t share = (capacity + others) / (others + 1);
  return std::max<size_t>(1, std::min(requested, share));
}

}  // namespace psk
