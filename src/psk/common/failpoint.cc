#include "psk/common/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "psk/common/macros.h"
#include "psk/common/result.h"

#include "psk/common/string_util.h"

namespace psk {

namespace failpoint_internal {
std::atomic<uint32_t> g_active{0};
}  // namespace failpoint_internal

namespace {

struct SiteState {
  uint64_t hits = 0;
  uint64_t fired = 0;
  bool armed = false;
  FailPointSchedule schedule;
};

struct Registry {
  std::mutex mu;
  // std::map: HitCounts() enumerates in sorted (deterministic) order.
  std::map<std::string, SiteState> sites;
  bool tracing = false;
  size_t armed_count = 0;

  void PublishActive() {
    failpoint_internal::g_active.store(
        static_cast<uint32_t>(armed_count + (tracing ? 1 : 0)),
        std::memory_order_relaxed);
  }
};

Registry& GetRegistry() {
  // Leaked singleton: immune to static-destruction order, safe for sites
  // hit from detached/pool threads during shutdown.
  static Registry* registry = new Registry;
  return *registry;
}

uint64_t Fnv1a(std::string_view text) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic coin for probabilistic schedules: a pure function of
// (seed, site, hit index), so the same seed reproduces the same fault
// schedule regardless of which thread hits the site or in what global
// order sites are visited.
bool CoinFires(const FailPointSchedule& schedule, std::string_view site,
               uint64_t hit) {
  if (schedule.probability >= 1.0) return true;
  if (schedule.probability <= 0.0) return false;
  uint64_t bits = SplitMix64(schedule.seed ^ Fnv1a(site) ^
                             (hit * 0x9e3779b97f4a7c15ULL));
  double uniform =
      static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
  return uniform < schedule.probability;
}

// What the evaluator decided under the lock; executed outside it (a
// throw or a long sleep must not hold the registry mutex).
struct Firing {
  FailPointAction action = FailPointAction::kOff;
  StatusCode code = StatusCode::kIOError;
  int error_number = EIO;
  uint32_t delay_ms = 0;
  uint64_t hit = 0;
};

// Counts the hit and, when the armed schedule covers it, returns the
// firing to execute.
Firing EvaluateSite(const char* site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[site];
  uint64_t hit = state.hits++;
  Firing firing;
  if (!state.armed) return firing;
  const FailPointSchedule& schedule = state.schedule;
  if (schedule.action == FailPointAction::kOff) return firing;
  if (hit < schedule.skip) return firing;
  if (hit - schedule.skip >= schedule.count) return firing;
  if (!CoinFires(schedule, site, hit)) return firing;
  ++state.fired;
  firing.action = schedule.action;
  firing.code = schedule.code;
  firing.error_number = schedule.error_number;
  firing.delay_ms = schedule.delay_ms;
  firing.hit = hit;
  return firing;
}

std::string InjectionMessage(const char* site, const Firing& firing) {
  return "failpoint '" + std::string(site) + "' injected " +
         std::string(StatusCodeToString(firing.code)) + " (hit " +
         std::to_string(firing.hit) + ")";
}

[[noreturn]] void Die(FailPointAction action) {
  if (action == FailPointAction::kAbort) std::abort();
  // SIGKILL: un-catchable, no atexit, no unwinding — the torture
  // harness's model of a power cut.
  kill(getpid(), SIGKILL);
  // kill(self, SIGKILL) does not return, but the compiler cannot know.
  std::abort();
}

std::optional<int> ParseErrnoArg(std::string_view arg) {
  if (arg == "EINTR") return EINTR;
  if (arg == "EAGAIN") return EAGAIN;
  if (arg == "EWOULDBLOCK") return EWOULDBLOCK;
  if (arg == "EIO") return EIO;
  if (arg == "ENOSPC") return ENOSPC;
  if (arg == "EACCES") return EACCES;
  if (arg == "ENOENT") return ENOENT;
  if (arg == "EMFILE") return EMFILE;
  if (arg == "EDQUOT") return EDQUOT;
  if (arg == "EROFS") return EROFS;
  Result<uint64_t> number = ParseUint64(arg);
  if (number.ok() && *number > 0 && *number < 4096) {
    return static_cast<int>(*number);
  }
  return std::nullopt;
}

// Parses one "site=action[(arg)][@skip][xcount][%prob[/seed]]" entry.
Result<std::pair<std::string, FailPointSchedule>> ParseEntry(
    std::string_view entry) {
  size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + std::string(entry) +
                                   "': expected site=action");
  }
  std::string site(Trim(entry.substr(0, eq)));
  std::string_view rest = Trim(entry.substr(eq + 1));

  FailPointSchedule schedule;
  size_t action_end = rest.find_first_of("(@x%");
  std::string_view action = rest.substr(0, action_end);
  std::string_view arg;
  if (action_end != std::string_view::npos && rest[action_end] == '(') {
    size_t close = rest.find(')', action_end);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("failpoint entry '" +
                                     std::string(entry) +
                                     "': unterminated argument");
    }
    arg = rest.substr(action_end + 1, close - action_end - 1);
    rest = rest.substr(close + 1);
  } else if (action_end != std::string_view::npos) {
    rest = rest.substr(action_end);
  } else {
    rest = {};
  }

  if (action == "error") {
    schedule.action = FailPointAction::kError;
    if (!arg.empty()) {
      std::optional<StatusCode> code = StatusCodeFromString(arg);
      if (!code.has_value() || *code == StatusCode::kOk) {
        return Status::InvalidArgument("failpoint entry '" +
                                       std::string(entry) +
                                       "': unknown status code '" +
                                       std::string(arg) + "'");
      }
      schedule.code = *code;
    }
  } else if (action == "errno") {
    schedule.action = FailPointAction::kErrno;
    if (!arg.empty()) {
      std::optional<int> number = ParseErrnoArg(arg);
      if (!number.has_value()) {
        return Status::InvalidArgument("failpoint entry '" +
                                       std::string(entry) +
                                       "': unknown errno '" +
                                       std::string(arg) + "'");
      }
      schedule.error_number = *number;
    } else {
      schedule.error_number = EIO;
    }
  } else if (action == "throw") {
    schedule.action = FailPointAction::kThrow;
  } else if (action == "delay") {
    schedule.action = FailPointAction::kDelay;
    if (!arg.empty()) {
      Result<uint64_t> ms = ParseUint64(arg);
      if (!ms.ok() || *ms > 60000) {
        return Status::InvalidArgument("failpoint entry '" +
                                       std::string(entry) +
                                       "': bad delay '" + std::string(arg) +
                                       "' (milliseconds, <= 60000)");
      }
      schedule.delay_ms = static_cast<uint32_t>(*ms);
    }
  } else if (action == "crash") {
    schedule.action = FailPointAction::kCrash;
  } else if (action == "abort") {
    schedule.action = FailPointAction::kAbort;
  } else if (action == "off") {
    schedule.action = FailPointAction::kOff;
  } else {
    return Status::InvalidArgument("failpoint entry '" + std::string(entry) +
                                   "': unknown action '" +
                                   std::string(action) + "'");
  }

  // Modifiers, in any sensible order: @skip, xcount, %prob[/seed].
  while (!rest.empty()) {
    char kind = rest.front();
    rest = rest.substr(1);
    size_t end = rest.find_first_of("@x%");
    std::string_view value = rest.substr(0, end);
    rest = end == std::string_view::npos ? std::string_view{}
                                         : rest.substr(end);
    if (kind == '@') {
      Result<uint64_t> skip = ParseUint64(value);
      if (!skip.ok()) {
        return Status::InvalidArgument("failpoint entry '" +
                                       std::string(entry) + "': bad @skip");
      }
      schedule.skip = *skip;
    } else if (kind == 'x') {
      Result<uint64_t> count = ParseUint64(value);
      if (!count.ok()) {
        return Status::InvalidArgument("failpoint entry '" +
                                       std::string(entry) + "': bad xcount");
      }
      schedule.count = *count;
    } else {  // '%'
      std::string_view prob = value;
      size_t slash = value.find('/');
      if (slash != std::string_view::npos) {
        prob = value.substr(0, slash);
        Result<uint64_t> seed = ParseUint64(value.substr(slash + 1));
        if (!seed.ok()) {
          return Status::InvalidArgument("failpoint entry '" +
                                         std::string(entry) +
                                         "': bad %prob/seed");
        }
        schedule.seed = *seed;
      }
      char* parse_end = nullptr;
      std::string prob_string(prob);
      double p = std::strtod(prob_string.c_str(), &parse_end);
      if (parse_end == prob_string.c_str() || *parse_end != '\0' || p < 0.0 ||
          p > 1.0) {
        return Status::InvalidArgument("failpoint entry '" +
                                       std::string(entry) +
                                       "': bad probability '" +
                                       prob_string + "'");
      }
      schedule.probability = p;
    }
  }
  return std::make_pair(std::move(site), schedule);
}

// Arms PSK_FAILPOINTS / PSK_FAILPOINT_TRACE from the environment before
// main(), so any binary can be driven without code changes.
struct EnvArmer {
  EnvArmer() {
    const char* spec = std::getenv("PSK_FAILPOINTS");
    if (spec != nullptr && *spec != '\0') {
      Status armed = FailPoints::ArmFromSpec(spec);
      if (!armed.ok()) {
        std::fprintf(stderr, "PSK_FAILPOINTS ignored: %s\n",
                     armed.ToString().c_str());
      }
    }
    const char* tracing = std::getenv("PSK_FAILPOINT_TRACE");
    if (tracing != nullptr && *tracing != '\0' && *tracing != '0') {
      FailPoints::SetTracing(true);
    }
  }
};
const EnvArmer g_env_armer;

}  // namespace

void FailPoints::Arm(const std::string& site, FailPointSchedule schedule) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[site];
  if (!state.armed) ++registry.armed_count;
  state.armed = true;
  state.schedule = schedule;
  registry.PublishActive();
}

Status FailPoints::ArmFromSpec(std::string_view spec) {
  // Parse every entry before arming any, so a bad spec arms nothing.
  std::vector<std::pair<std::string, FailPointSchedule>> parsed;
  for (const std::string& entry : Split(spec, ';')) {
    if (Trim(entry).empty()) continue;
    PSK_ASSIGN_OR_RETURN(auto one, ParseEntry(Trim(entry)));
    parsed.push_back(std::move(one));
  }
  for (auto& [site, schedule] : parsed) {
    Arm(site, schedule);
  }
  return Status::OK();
}

void FailPoints::Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  --registry.armed_count;
  registry.PublishActive();
}

void FailPoints::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.clear();
  registry.armed_count = 0;
  registry.tracing = false;
  registry.PublishActive();
}

void FailPoints::SetTracing(bool enabled) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.tracing = enabled;
  registry.PublishActive();
}

uint64_t FailPoints::Hits(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, uint64_t>> FailPoints::HitCounts() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(registry.sites.size());
  for (const auto& [site, state] : registry.sites) {
    if (state.hits > 0) out.emplace_back(site, state.hits);
  }
  return out;
}

uint64_t FailPoints::TotalFired() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t total = 0;
  for (const auto& [site, state] : registry.sites) total += state.fired;
  return total;
}

Status FailPointCheck(const char* site) {
  Firing firing = EvaluateSite(site);
  switch (firing.action) {
    case FailPointAction::kOff:
      return Status::OK();
    case FailPointAction::kError:
      return Status(firing.code, InjectionMessage(site, firing));
    case FailPointAction::kErrno: {
      Firing io = firing;
      io.code = StatusCode::kIOError;
      return Status(io.code, InjectionMessage(site, io));
    }
    case FailPointAction::kThrow:
      throw FailPointException("failpoint '" + std::string(site) +
                               "' threw (hit " + std::to_string(firing.hit) +
                               ")");
    case FailPointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(firing.delay_ms));
      return Status::OK();
    case FailPointAction::kCrash:
    case FailPointAction::kAbort:
      Die(firing.action);
  }
  return Status::OK();
}

bool FailPointFailSyscall(const char* site) {
  Firing firing = EvaluateSite(site);
  switch (firing.action) {
    case FailPointAction::kOff:
      return false;
    case FailPointAction::kError:
    case FailPointAction::kErrno:
      errno = firing.error_number;
      return true;
    case FailPointAction::kThrow:
      throw FailPointException("failpoint '" + std::string(site) +
                               "' threw (hit " + std::to_string(firing.hit) +
                               ")");
    case FailPointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(firing.delay_ms));
      return false;
    case FailPointAction::kCrash:
    case FailPointAction::kAbort:
      Die(firing.action);
  }
  return false;
}

void FailPointMaybeThrow(const char* site) {
  Firing firing = EvaluateSite(site);
  switch (firing.action) {
    case FailPointAction::kOff:
      return;
    case FailPointAction::kError:
    case FailPointAction::kErrno:
    case FailPointAction::kThrow:
      throw FailPointException("failpoint '" + std::string(site) +
                               "' threw (hit " + std::to_string(firing.hit) +
                               ")");
    case FailPointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(firing.delay_ms));
      return;
    case FailPointAction::kCrash:
    case FailPointAction::kAbort:
      Die(firing.action);
  }
}

}  // namespace psk
