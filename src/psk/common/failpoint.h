#ifndef PSK_COMMON_FAILPOINT_H_
#define PSK_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "psk/common/status.h"

namespace psk {

/// Deterministic failure-injection framework ("failpoints").
///
/// A failpoint is a named site in production code where a test — or the
/// PSK_FAILPOINTS environment variable — can make the process fail on
/// demand: return an error Status, fail a syscall with a chosen errno,
/// throw, sleep, or die on the spot (SIGKILL / abort, for the
/// crash-consistency torture harness). Sites are compiled into release
/// builds; the disabled cost is a single branch on one relaxed atomic
/// (see FailPointsActive), so the hot paths pay nothing measurable.
///
/// Site naming convention: `<layer>.<object>.<operation>`, e.g.
/// "durable.write.fsync", "jobs.journal.commit", "threadpool.task". The
/// full catalogue lives in DESIGN.md §8.
///
/// Schedules are deterministic: a site fires on hit indices
/// [skip, skip + count) of its process-lifetime hit counter, optionally
/// thinned by a probability whose coin is a pure function of
/// (seed, site, hit index) — the same seed always reproduces the same
/// fault schedule, byte for byte, regardless of thread interleaving.

/// What an armed site does when its schedule fires.
enum class FailPointAction {
  kOff = 0,    ///< counts hits, never fires (tracing/enumeration)
  kError,      ///< Status sites return Status(code, ...); syscall sites
               ///< fail with errno = error_number
  kErrno,      ///< syscall sites fail with errno = error_number (EINTR /
               ///< EAGAIN-class transients); Status sites return kIOError
  kThrow,      ///< throws FailPointException (exception-safety torture)
  kDelay,      ///< sleeps delay_ms, then continues normally
  kCrash,      ///< SIGKILL the process at the site (un-catchable)
  kAbort,      ///< std::abort() at the site (catchable by a crash handler)
};

/// The exception kThrow raises. Derives from std::exception so the
/// ThreadPool's exception-safe ParallelFor treats it like any task error.
class FailPointException : public std::exception {
 public:
  explicit FailPointException(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// One site's armed schedule.
struct FailPointSchedule {
  FailPointAction action = FailPointAction::kError;
  /// Status code injected at Status-style sites (kError).
  StatusCode code = StatusCode::kIOError;
  /// errno injected at syscall-style sites (kError / kErrno).
  int error_number = 5;  // EIO
  /// Hits to let pass before the first firing (0 = fire immediately).
  uint64_t skip = 0;
  /// Firings after `skip`; default unlimited.
  uint64_t count = std::numeric_limits<uint64_t>::max();
  /// Milliseconds slept by kDelay.
  uint32_t delay_ms = 0;
  /// When < 1.0, each in-window hit fires with this probability, decided
  /// by a deterministic coin: a pure function of (seed, site, hit index).
  double probability = 1.0;
  uint64_t seed = 0;
};

namespace failpoint_internal {
/// Non-zero iff any site is armed or hit tracing is on. Relaxed is
/// correct: tests arm before starting the run they observe, and a stale
/// read merely delays the first slow-path visit by one hit.
extern std::atomic<uint32_t> g_active;
}  // namespace failpoint_internal

/// The single-branch fast path every PSK_FAIL_POINT* macro compiles to
/// when nothing is armed.
inline bool FailPointsActive() {
  return failpoint_internal::g_active.load(std::memory_order_relaxed) != 0;
}

/// Process-wide registry of armed sites. All methods are thread-safe; the
/// registry is only consulted on the slow path (something armed or
/// tracing on).
class FailPoints {
 public:
  /// Arms `site` with `schedule`, replacing any previous schedule. The
  /// site need not have been hit yet — unknown names simply never fire.
  static void Arm(const std::string& site, FailPointSchedule schedule);

  /// Arms sites from a spec string — the PSK_FAILPOINTS syntax:
  ///
  ///   spec     := entry (';' entry)*
  ///   entry    := site '=' action ['(' arg ')'] ['@' skip] ['x' count]
  ///               ['%' probability ['/' seed]]
  ///   action   := 'error' | 'errno' | 'throw' | 'delay' | 'crash'
  ///             | 'abort' | 'off'
  ///
  /// arg is a StatusCode name for `error` ("DataLoss"), an errno name or
  /// number for `errno` ("EINTR", "EAGAIN", "ENOSPC", "EIO", or digits),
  /// and milliseconds for `delay`. Examples:
  ///
  ///   jobs.journal.commit=error(DataLoss)@1
  ///   durable.write.write=errno(EINTR)x3
  ///   durable.write.rename=crash@2
  ///   threadpool.task=throw%0.25/42
  ///
  /// Returns kInvalidArgument naming the offending entry on parse errors
  /// (no entries are armed in that case).
  static Status ArmFromSpec(std::string_view spec);

  /// Disarms one site (hit counters are kept) / everything (counters and
  /// tracing reset — the clean-slate call tests should make in teardown).
  static void Disarm(const std::string& site);
  static void DisarmAll();

  /// When tracing is on, every site visit is counted even with no
  /// schedule armed — the torture harness's enumeration pass.
  static void SetTracing(bool enabled);

  /// Lifetime hit count of `site` (0 for never-visited names).
  static uint64_t Hits(const std::string& site);

  /// Every site visited since the last DisarmAll, with hit counts,
  /// sorted by name (deterministic enumeration order).
  static std::vector<std::pair<std::string, uint64_t>> HitCounts();

  /// Sum of schedule firings since the last DisarmAll (how many faults
  /// were actually injected).
  static uint64_t TotalFired();
};

/// Slow-path evaluators — call only behind FailPointsActive() (the macros
/// below do). Each counts the hit, then applies the armed schedule:
///
///  - FailPointCheck: Status-style sites. Returns the injected error for
///    kError/kErrno; throws for kThrow; sleeps for kDelay; dies for
///    kCrash/kAbort; otherwise OK.
///  - FailPointFailSyscall: syscall-style sites. Returns true with errno
///    set when the schedule fires with kError/kErrno (the caller then
///    takes its real syscall-failure path); throw/delay/crash behave as
///    above; otherwise false.
///  - FailPointMaybeThrow: throw-style sites (worker tasks). kThrow (and
///    kError, for convenience) throw FailPointException; delay/crash as
///    above.
Status FailPointCheck(const char* site);
bool FailPointFailSyscall(const char* site);
void FailPointMaybeThrow(const char* site);

/// Status-returning site: `return`s the injected Status out of the
/// enclosing function when the site fires. Use inside functions returning
/// Status or Result<T>.
#define PSK_FAIL_POINT(site)                                 \
  do {                                                       \
    if (::psk::FailPointsActive()) {                         \
      ::psk::Status psk_fp_status = ::psk::FailPointCheck(site); \
      if (!psk_fp_status.ok()) return psk_fp_status;         \
    }                                                        \
  } while (false)

/// Syscall-style site: evaluates to true (with errno set) when the site
/// fires, so call sites read `if (PSK_FAIL_POINT_SYSCALL(...) || real_call`
/// `() < 0)` and share one error path with the real syscall.
#define PSK_FAIL_POINT_SYSCALL(site) \
  (::psk::FailPointsActive() && ::psk::FailPointFailSyscall(site))

/// Throw-style site for void contexts (worker tasks).
#define PSK_FAIL_POINT_THROW(site)                        \
  do {                                                    \
    if (::psk::FailPointsActive()) {                      \
      ::psk::FailPointMaybeThrow(site);                   \
    }                                                     \
  } while (false)

}  // namespace psk

#endif  // PSK_COMMON_FAILPOINT_H_
