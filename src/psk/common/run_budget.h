#ifndef PSK_COMMON_RUN_BUDGET_H_
#define PSK_COMMON_RUN_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "psk/common/memory_budget.h"
#include "psk/common/status.h"

namespace psk {

/// Cooperative cancellation flag shared between a caller and a running
/// anonymization. The caller keeps one reference (e.g. wired to a signal
/// handler or an RPC context) and hands another to RunBudget::cancel; the
/// search observes the flag at every budget checkpoint and unwinds with
/// kCancelled. Thread-safe.
///
/// Sharing semantics: the flag is sticky. Once Cancel() is called, every
/// run sharing the token — including runs started later — observes it as
/// cancelled until Reset() is called. A token reused across sequential
/// runs must therefore be Reset() between them; for concurrent runs,
/// prefer one token per run unless "cancel them all" is the intent.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms a cancelled token for the next run. Do not call while a run
  /// sharing this token is still in flight: the racing run may miss the
  /// cancellation entirely.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for one anonymization run. Default-constructed budgets
/// are unlimited, so existing callers pay only an atomic increment per
/// lattice node.
///
/// The lattice is exponential in the number of key attributes, so a
/// hostile schema can make any of the searches run effectively forever; a
/// budget turns "forever" into a clean kDeadlineExceeded /
/// kResourceExhausted status carrying whatever best-so-far result the
/// search had (see SearchStats::partial).
struct RunBudget {
  /// Wall-clock limit, measured from the moment the enforcer is created
  /// (i.e. from the start of the search, not of process).
  std::optional<std::chrono::milliseconds> deadline;
  /// Budget checkpoints between wall-clock reads. 1 (the default) reads
  /// the clock at every checkpoint — a steady_clock read is tens of
  /// nanoseconds, negligible next to evaluating a lattice node. Raise it
  /// only for workloads with very cheap checkpoints.
  uint64_t check_interval = 1;
  /// Cap on lattice nodes expanded (generalizations applied). For the
  /// clustering algorithms this counts splits/growth steps instead.
  std::optional<uint64_t> max_nodes_expanded;
  /// Cap on total rows materialized across all node evaluations — a proxy
  /// for peak memory/CPU spent on intermediate tables.
  std::optional<uint64_t> max_rows_materialized;
  /// Optional cooperative cancellation; may be shared across runs.
  std::shared_ptr<CancelToken> cancel;
  /// Optional per-job byte accountant, charged at the allocation seams
  /// (EncodedTable::Build, group-by scratch growth, VerdictCache
  /// inserts). When the budget is force-exhausted, every enforcer
  /// checkpoint fails with kResourceExhausted — a budget-stop code the
  /// search absorbs into a best-so-far partial result.
  std::shared_ptr<MemoryBudget> memory;
  /// Optional liveness counter, bumped at every enforcer checkpoint. A
  /// scheduler watchdog polls it to tell a slow job (counter advancing)
  /// from a hung or budget-deaf one (counter frozen). Observability only;
  /// never causes a stop.
  std::shared_ptr<std::atomic<uint64_t>> heartbeat;

  /// True when no limit of any kind is configured (the heartbeat is not a
  /// limit; an attached memory budget is).
  bool Unlimited() const {
    return !deadline.has_value() && !max_nodes_expanded.has_value() &&
           !max_rows_materialized.has_value() && cancel == nullptr &&
           memory == nullptr;
  }
};

/// Thread-safe accountant for one run. Created when a search starts (the
/// deadline clock starts ticking at construction) and charged at every
/// checkpoint; the first exceeded limit makes every subsequent Charge()
/// fail, so a search cannot accidentally keep working after a stop.
///
/// One enforcer may be shared by several NodeEvaluators (the threaded
/// exhaustive sweep), making every limit global across threads.
class BudgetEnforcer {
 public:
  explicit BudgetEnforcer(RunBudget budget);

  /// Records `nodes` expanded and `rows` materialized, then checks every
  /// configured limit. Returns OK, or kResourceExhausted /
  /// kDeadlineExceeded / kCancelled naming the limit and its value.
  Status Charge(uint64_t nodes = 1, uint64_t rows = 0);

  /// Checks deadline and cancellation without advancing any counter (for
  /// loops that do bookkeeping between node evaluations).
  Status Check();

  uint64_t nodes_expanded() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  uint64_t rows_materialized() const {
    return rows_.load(std::memory_order_relaxed);
  }

  /// Wall-clock spent since construction.
  std::chrono::milliseconds Elapsed() const;

  /// Deadline left, clamped at zero; nullopt when no deadline is set.
  /// Used to re-budget the later stages of a fallback chain.
  std::optional<std::chrono::milliseconds> Remaining() const;

  const RunBudget& budget() const { return budget_; }

 private:
  Status Trip(Status status);

  RunBudget budget_;
  std::chrono::steady_clock::time_point start_;
  /// start_ + deadline, saturated to the clock's representable range so a
  /// huge deadline (milliseconds::max()) clamps to "effectively never"
  /// instead of wrapping into the past. Meaningful only when
  /// budget_.deadline is set.
  std::chrono::steady_clock::time_point deadline_point_;
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> checks_{0};
  /// StatusCode of the first exceeded limit; kOk while within budget.
  std::atomic<int> tripped_code_{0};
};

/// True iff `status` is one of the budget-stop codes (kDeadlineExceeded,
/// kCancelled, kResourceExhausted) — the statuses a search absorbs into a
/// best-so-far partial result rather than propagating as a hard error.
bool IsBudgetExhausted(const Status& status);
bool IsBudgetExhausted(StatusCode code);

}  // namespace psk

#endif  // PSK_COMMON_RUN_BUDGET_H_
