#include "psk/common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "psk/common/check.h"

namespace psk {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) return;
  if (scopes_.back() == Scope::kObject) {
    PSK_DCHECK(pending_key_);  // values inside objects need a key
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

void JsonWriter::Raw(const std::string& text) {
  BeforeValue();
  out_ += text;
}

JsonWriter& JsonWriter::BeginObject() {
  Raw("{");
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PSK_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  PSK_DCHECK(!pending_key_);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Raw("[");
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PSK_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  PSK_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  PSK_DCHECK(!pending_key_);
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Raw("\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    Raw(buf);
  } else {
    Raw("null");  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Raw(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Raw("null");
  return *this;
}

std::string JsonWriter::TakeString() {
  PSK_DCHECK(scopes_.empty());
  std::string out = std::move(out_);
  out_.clear();
  return out;
}

}  // namespace psk
