#include "psk/common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "psk/common/check.h"

namespace psk {

namespace {

// Length of the valid UTF-8 sequence starting at text[i], or 0 when the
// bytes there are not well-formed UTF-8 (overlong encoding, surrogate
// code point U+D800..U+DFFF, value above U+10FFFF, stray continuation or
// truncated tail). Tight second-byte ranges per the Unicode 15 table 3-7.
size_t Utf8SequenceLength(const std::string& text, size_t i) {
  unsigned char b0 = static_cast<unsigned char>(text[i]);
  size_t remaining = text.size() - i;
  auto cont = [&](size_t off, unsigned char lo = 0x80,
                  unsigned char hi = 0xBF) {
    if (off >= remaining) return false;
    unsigned char b = static_cast<unsigned char>(text[i + off]);
    return b >= lo && b <= hi;
  };
  if (b0 <= 0x7F) return 1;
  if (b0 >= 0xC2 && b0 <= 0xDF) return cont(1) ? 2 : 0;
  if (b0 == 0xE0) return cont(1, 0xA0) && cont(2) ? 3 : 0;  // no overlongs
  if (b0 >= 0xE1 && b0 <= 0xEC) return cont(1) && cont(2) ? 3 : 0;
  if (b0 == 0xED) {
    return cont(1, 0x80, 0x9F) && cont(2) ? 3 : 0;  // no surrogates
  }
  if (b0 >= 0xEE && b0 <= 0xEF) return cont(1) && cont(2) ? 3 : 0;
  if (b0 == 0xF0) return cont(1, 0x90) && cont(2) && cont(3) ? 4 : 0;
  if (b0 >= 0xF1 && b0 <= 0xF3) return cont(1) && cont(2) && cont(3) ? 4 : 0;
  if (b0 == 0xF4) {
    return cont(1, 0x80, 0x8F) && cont(2) && cont(3) ? 4 : 0;  // <= U+10FFFF
  }
  return 0;  // 0x80..0xC1 (stray continuation / overlong lead), 0xF5..0xFF
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (size_t i = 0; i < text.size();) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c >= 0x80) {
      // Non-ASCII: copy well-formed UTF-8 through verbatim; replace each
      // ill-formed byte with U+FFFD so the document stays valid UTF-8 and
      // every parser (RFC 8259 §8.1 mandates UTF-8) accepts it.
      size_t len = Utf8SequenceLength(text, i);
      if (len == 0) {
        out += "\xEF\xBF\xBD";  // U+FFFD replacement character
        ++i;
      } else {
        out.append(text, i, len);
        i += len;
      }
      continue;
    }
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
    ++i;
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) return;
  if (scopes_.back() == Scope::kObject) {
    PSK_DCHECK(pending_key_);  // values inside objects need a key
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

void JsonWriter::Raw(const std::string& text) {
  BeforeValue();
  out_ += text;
}

JsonWriter& JsonWriter::BeginObject() {
  Raw("{");
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PSK_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  PSK_DCHECK(!pending_key_);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Raw("[");
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PSK_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  PSK_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  PSK_DCHECK(!pending_key_);
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Raw("\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    Raw(buf);
  } else {
    Raw("null");  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Raw(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Raw("null");
  return *this;
}

std::string JsonWriter::TakeString() {
  PSK_DCHECK(scopes_.empty());
  std::string out = std::move(out_);
  out_.clear();
  return out;
}

}  // namespace psk
