#ifndef PSK_GUARD_GUARD_H_
#define PSK_GUARD_GUARD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/table/table.h"
#include "psk/trace/trace.h"

namespace psk {

/// What a release must satisfy to leave the system. The guard re-derives
/// every quantity from the masked microdata itself — it shares no state
/// with the algorithm that produced the release, so an algorithm bug (or a
/// post-processing step that tampers with the table) cannot slip a
/// violating release past it.
struct GuardPolicy {
  /// Minimum QI-group size (Definition 1).
  size_t k = 2;
  /// Minimum distinct confidential values per group (Definition 2);
  /// 1 disables the p-sensitivity check.
  size_t p = 1;
  /// Maximum number of tuples the release may have suppressed relative to
  /// the original microdata; unset = suppression unlimited.
  std::optional<size_t> max_suppression;
  /// Maximum tolerated attribute disclosures — (group, confidential
  /// attribute) pairs where the whole group shares one value; unset =
  /// disclosures are not checked. With p >= 2 every group has >= 2
  /// distinct values per attribute, so 0 is the natural setting.
  std::optional<size_t> max_attribute_disclosures;
};

/// The individual checks the guard runs, in order.
enum class GuardCheck {
  kKAnonymity = 0,
  kPSensitivity = 1,
  kSuppression = 2,
  kAttributeDisclosure = 3,
};

/// Stable name for a check ("k-anonymity", "p-sensitivity", ...).
const char* GuardCheckName(GuardCheck check);

/// One failed check, with the observed-vs-required numbers in the message.
struct GuardViolation {
  GuardCheck check;
  std::string message;
};

/// Full verification outcome: the independently measured properties of the
/// release plus every check that failed. All observed_* fields are valid
/// whether or not the release passed.
struct GuardReport {
  bool passed = false;
  /// Smallest QI-group size of the release (0 when the release is empty —
  /// an empty release is vacuously anonymous).
  size_t observed_k = 0;
  /// Smallest per-group distinct-confidential-value count (only measured
  /// when the policy requires p >= 2 and the schema has confidential
  /// attributes; 0 otherwise).
  size_t observed_p = 0;
  /// original_rows - released rows.
  size_t suppressed = 0;
  /// Only measured when the policy sets max_attribute_disclosures.
  size_t attribute_disclosures = 0;
  std::vector<GuardViolation> violations;

  /// One line per violation, or "release passed ..." when clean.
  std::string Summary() const;
};

/// Re-checks a masked microdata against `policy` from scratch:
/// k-anonymity, p-sensitivity, the suppression cap (via `original_rows`,
/// the row count of the microdata the release was derived from), and the
/// residual attribute-disclosure count. Never trusts the producing
/// algorithm's own accounting. Fails (as opposed to reporting violations)
/// only on malformed input, e.g. a release with more rows than the
/// original.
///
/// When `trace` is non-null, one span per executed check is recorded on it
/// (names "check_kanonymity", "check_psensitivity", "check_suppression",
/// "check_disclosure") carrying the observed value and a pass/fail
/// attribute. The guard runs on the caller's thread, so it may open spans
/// directly.
Result<GuardReport> VerifyRelease(const Table& masked, size_t original_rows,
                                  const GuardPolicy& policy,
                                  RunTrace* trace = nullptr);

/// Convenience wrapper: returns OK when the release passes, otherwise
/// FailedPrecondition whose message lists every violated check. When
/// `report` is non-null it receives the full report either way. `trace`
/// is forwarded to VerifyRelease.
Status EnforceRelease(const Table& masked, size_t original_rows,
                      const GuardPolicy& policy,
                      GuardReport* report = nullptr,
                      RunTrace* trace = nullptr);

}  // namespace psk

#endif  // PSK_GUARD_GUARD_H_
