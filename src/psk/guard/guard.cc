#include "psk/guard/guard.h"

#include "psk/anonymity/kanonymity.h"
#include "psk/anonymity/psensitive.h"
#include "psk/common/failpoint.h"

namespace psk {
namespace {

std::string Num(size_t value) { return std::to_string(value); }

void AddViolation(GuardReport* report, GuardCheck check,
                  std::string message) {
  report->violations.push_back(GuardViolation{check, std::move(message)});
}

}  // namespace

const char* GuardCheckName(GuardCheck check) {
  switch (check) {
    case GuardCheck::kKAnonymity:
      return "k-anonymity";
    case GuardCheck::kPSensitivity:
      return "p-sensitivity";
    case GuardCheck::kSuppression:
      return "suppression";
    case GuardCheck::kAttributeDisclosure:
      return "attribute-disclosure";
  }
  return "unknown";
}

std::string GuardReport::Summary() const {
  if (violations.empty()) {
    return "release passed: k=" + Num(observed_k) + ", p=" +
           Num(observed_p) + ", suppressed=" + Num(suppressed);
  }
  std::string out;
  for (const GuardViolation& v : violations) {
    if (!out.empty()) out += "; ";
    out += "[";
    out += GuardCheckName(v.check);
    out += "] ";
    out += v.message;
  }
  return out;
}

Result<GuardReport> VerifyRelease(const Table& masked, size_t original_rows,
                                  const GuardPolicy& policy,
                                  RunTrace* trace) {
  if (policy.k < 1) return Status::InvalidArgument("guard k must be >= 1");
  if (policy.p < 1) return Status::InvalidArgument("guard p must be >= 1");
  if (masked.num_rows() > original_rows) {
    return Status::InvalidArgument(
        "release has " + Num(masked.num_rows()) +
        " rows but the original microdata had only " + Num(original_rows));
  }

  GuardReport report;
  report.suppressed = original_rows - masked.num_rows();

  std::vector<size_t> key_indices = masked.schema().KeyIndices();
  std::vector<size_t> conf_indices = masked.schema().ConfidentialIndices();
  // One span per executed check; a check that records no span was not run
  // for this policy/schema, which is itself structural information.
  auto check_verdict = [](TraceSpan& span, bool ok) {
    span.Attr("verdict", ok ? "passed" : "violated");
  };

  // k-anonymity (Definition 1). An empty release is vacuously anonymous —
  // the suppression cap below is what stops "suppress everything" from
  // being a free pass.
  if (!key_indices.empty() && masked.num_rows() > 0) {
    TraceSpan span(trace, "check_kanonymity");
    PSK_ASSIGN_OR_RETURN(report.observed_k,
                         AnonymityK(masked, key_indices));
    span.Counter("observed_k", report.observed_k);
    check_verdict(span, report.observed_k >= policy.k);
    if (report.observed_k < policy.k) {
      AddViolation(&report, GuardCheck::kKAnonymity,
                   "smallest QI-group has " + Num(report.observed_k) +
                       " tuples; policy requires k=" + Num(policy.k));
    }
  }

  // p-sensitivity (Definition 2).
  if (policy.p >= 2) {
    TraceSpan span(trace, "check_psensitivity");
    if (conf_indices.empty()) {
      check_verdict(span, false);
      AddViolation(&report, GuardCheck::kPSensitivity,
                   "policy requires p=" + Num(policy.p) +
                       " but the release has no confidential attributes");
    } else if (!key_indices.empty() && masked.num_rows() > 0) {
      PSK_ASSIGN_OR_RETURN(
          report.observed_p,
          SensitivityP(masked, key_indices, conf_indices));
      span.Counter("observed_p", report.observed_p);
      check_verdict(span, report.observed_p >= policy.p);
      if (report.observed_p < policy.p) {
        AddViolation(
            &report, GuardCheck::kPSensitivity,
            "some QI-group has only " + Num(report.observed_p) +
                " distinct confidential values; policy requires p=" +
                Num(policy.p));
      }
    } else {
      check_verdict(span, true);
    }
  }

  // Suppression cap.
  if (policy.max_suppression.has_value()) {
    TraceSpan span(trace, "check_suppression");
    span.Counter("suppressed", report.suppressed);
    bool ok = report.suppressed <= *policy.max_suppression;
    check_verdict(span, ok);
    if (!ok) {
      AddViolation(&report, GuardCheck::kSuppression,
                   Num(report.suppressed) +
                       " tuples suppressed; policy allows at most " +
                       Num(*policy.max_suppression));
    }
  }

  // Residual attribute disclosures (Table 8 of the paper).
  if (policy.max_attribute_disclosures.has_value() && !key_indices.empty() &&
      !conf_indices.empty() && masked.num_rows() > 0) {
    TraceSpan span(trace, "check_disclosure");
    PSK_ASSIGN_OR_RETURN(
        report.attribute_disclosures,
        CountAttributeDisclosures(masked, key_indices, conf_indices));
    span.Counter("disclosures", report.attribute_disclosures);
    check_verdict(span,
                  report.attribute_disclosures <=
                      *policy.max_attribute_disclosures);
    if (report.attribute_disclosures > *policy.max_attribute_disclosures) {
      AddViolation(&report, GuardCheck::kAttributeDisclosure,
                   Num(report.attribute_disclosures) +
                       " attribute disclosures; policy allows at most " +
                       Num(*policy.max_attribute_disclosures));
    }
  }

  report.passed = report.violations.empty();
  return report;
}

Status EnforceRelease(const Table& masked, size_t original_rows,
                      const GuardPolicy& policy, GuardReport* report,
                      RunTrace* trace) {
  // Torture seam: an injected error here must surface as the run's own
  // clean failure — a release the guard could not verify never escapes.
  PSK_FAIL_POINT("guard.verify");
  PSK_ASSIGN_OR_RETURN(GuardReport verified,
                       VerifyRelease(masked, original_rows, policy, trace));
  if (report != nullptr) *report = verified;
  if (verified.passed) return Status::OK();
  return Status::FailedPrecondition("release guard refused the release: " +
                                    verified.Summary());
}

}  // namespace psk
