#ifndef PSK_GENERALIZE_GENERALIZE_H_
#define PSK_GENERALIZE_GENERALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/lattice/lattice.h"
#include "psk/table/encoded.h"
#include "psk/table/table.h"

namespace psk {

/// Applies the full-domain generalization described by `node` to `table`:
/// each key attribute's column is mapped through its hierarchy at the
/// node's level (global recoding — every occurrence of a value maps to the
/// same generalized value). Identifier attributes are dropped; confidential
/// and other attributes pass through unchanged, matching the paper's
/// masking model (§2-3).
///
/// Generalized key columns whose level is > 0 hold string values, so the
/// output schema re-types those attributes as kString.
Result<Table> ApplyGeneralization(const Table& table,
                                  const HierarchySet& hierarchies,
                                  const LatticeNode& node);

/// Removes every tuple belonging to a key-attribute group with fewer than
/// `k` members — the suppression step applied after generalization.
/// Returns the surviving table; `*suppressed_count` (optional) receives the
/// number of removed tuples.
Result<Table> SuppressUndersizedGroups(const Table& table,
                                       const std::vector<size_t>& key_indices,
                                       size_t k,
                                       size_t* suppressed_count = nullptr);

/// Result of running the full masking pipeline on an initial microdata.
struct MaskedMicrodata {
  Table table;          ///< the masked microdata (MM)
  LatticeNode node;     ///< the generalization applied
  size_t suppressed = 0;  ///< tuples removed by suppression
};

/// Masking pipeline: drop identifiers, generalize the key attributes to
/// `node`, then (if `k` > 0) suppress groups smaller than `k`. This is how
/// every candidate MM in the lattice searches is produced.
Result<MaskedMicrodata> Mask(const Table& initial_microdata,
                             const HierarchySet& hierarchies,
                             const LatticeNode& node, size_t k = 0);

/// Code-path masking result: the grouping and suppression decisions of
/// Mask() computed entirely over dictionary codes — group ids and a keep
/// mask instead of a materialized table.
struct EncodedMaskResult {
  /// QI-partition of the rows at the node (all key attributes; group ids
  /// numbered by first occurrence, matching FrequencySet order).
  EncodedGroups groups;
  /// keep[row] == false where suppression removes the row. Empty when
  /// k == 0 (Mask applies no suppression then).
  std::vector<bool> keep;
  size_t suppressed = 0;        ///< rows suppression removes
  size_t surviving_groups = 0;  ///< groups of size >= k (0 when k == 0)
};

/// Code-path counterpart of Mask()'s grouping + suppression: partitions
/// the encoded rows at `node` and computes the keep mask for groups of
/// size >= k, without constructing a single Value. `ws` is the caller's
/// reusable workspace. Counts agree exactly with the legacy pipeline.
Result<EncodedMaskResult> MaskEncoded(const EncodedTable& encoded,
                                      const LatticeNode& node, size_t k,
                                      EncodedWorkspace* ws);

/// Full code-path masking pipeline: MaskEncoded + EncodedTable::Decode,
/// producing a MaskedMicrodata byte-identical to
/// Mask(initial_microdata, hierarchies, node, k) over the same inputs.
/// This is how a search's winning node is materialized exactly once.
Result<MaskedMicrodata> DecodeMasked(const EncodedTable& encoded,
                                     const LatticeNode& node, size_t k,
                                     EncodedWorkspace* ws);

/// Alternative to tuple deletion — the "local suppression" of §2: instead
/// of removing the tuples of undersized groups, their *key attribute
/// cells* are masked to "*", moving them into the fully-suppressed group.
/// Tuples are only deleted if even that group stays smaller than `k`.
///
/// Keeps more rows (confidential values of outliers remain available to
/// analysts) at the cost of key information; the returned table still
/// satisfies k-anonymity.
///
/// `*cells_masked` (optional) receives the number of masked cells;
/// `*deleted` the number of tuples that had to be removed anyway.
Result<Table> SuppressUndersizedGroupCells(
    const Table& table, const std::vector<size_t>& key_indices, size_t k,
    size_t* cells_masked = nullptr, size_t* deleted = nullptr);

/// Number of tuples of `table` (already generalized) violating k-anonymity,
/// i.e. living in groups smaller than k. This is the per-node count the
/// paper plots in Fig. 3.
Result<size_t> CountTuplesViolatingK(const Table& table,
                                     const std::vector<size_t>& key_indices,
                                     size_t k);

}  // namespace psk

#endif  // PSK_GENERALIZE_GENERALIZE_H_
