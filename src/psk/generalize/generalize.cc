#include "psk/generalize/generalize.h"

#include <unordered_map>

#include "psk/table/group_by.h"

namespace psk {

Result<Table> ApplyGeneralization(const Table& table,
                                  const HierarchySet& hierarchies,
                                  const LatticeNode& node) {
  const Schema& schema = table.schema();
  std::vector<size_t> key_indices = schema.KeyIndices();
  if (node.levels.size() != key_indices.size()) {
    return Status::InvalidArgument(
        "lattice node has " + std::to_string(node.levels.size()) +
        " levels but the schema has " + std::to_string(key_indices.size()) +
        " key attributes");
  }

  // Build the output schema: identifiers dropped; generalized key columns
  // re-typed to string.
  std::vector<Attribute> out_attrs;
  std::vector<size_t> src_cols;
  std::unordered_map<size_t, size_t> key_col_to_slot;  // src col -> key slot
  for (size_t slot = 0; slot < key_indices.size(); ++slot) {
    key_col_to_slot[key_indices[slot]] = slot;
  }
  for (size_t col = 0; col < schema.num_attributes(); ++col) {
    const Attribute& attr = schema.attribute(col);
    if (attr.role == AttributeRole::kIdentifier) continue;
    Attribute out_attr = attr;
    auto it = key_col_to_slot.find(col);
    if (it != key_col_to_slot.end() && node.levels[it->second] > 0) {
      out_attr.type = ValueType::kString;
    }
    out_attrs.push_back(std::move(out_attr));
    src_cols.push_back(col);
  }
  PSK_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(out_attrs)));
  Table out(std::move(out_schema));

  // Per key attribute, memoize ground value -> generalized value. Global
  // recoding guarantees the map is a function of the value alone.
  std::vector<std::unordered_map<Value, Value, ValueHash>> memo(
      key_indices.size());

  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::vector<Value> out_row;
    out_row.reserve(src_cols.size());
    for (size_t col : src_cols) {
      auto it = key_col_to_slot.find(col);
      if (it == key_col_to_slot.end() || node.levels[it->second] == 0) {
        out_row.push_back(table.Get(row, col));
        continue;
      }
      size_t slot = it->second;
      const Value& ground = table.Get(row, col);
      auto cached = memo[slot].find(ground);
      if (cached != memo[slot].end()) {
        out_row.push_back(cached->second);
        continue;
      }
      PSK_ASSIGN_OR_RETURN(
          Value generalized,
          hierarchies.hierarchy(slot).Generalize(ground, node.levels[slot]));
      memo[slot].emplace(ground, generalized);
      out_row.push_back(std::move(generalized));
    }
    PSK_RETURN_IF_ERROR(out.AppendRow(std::move(out_row)));
  }
  return out;
}

Result<Table> SuppressUndersizedGroups(const Table& table,
                                       const std::vector<size_t>& key_indices,
                                       size_t k,
                                       size_t* suppressed_count) {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1 for suppression");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  std::vector<bool> keep(table.num_rows(), false);
  size_t suppressed = 0;
  for (const Group& group : fs.groups()) {
    if (group.size() >= k) {
      for (size_t row : group.row_indices) keep[row] = true;
    } else {
      suppressed += group.size();
    }
  }
  if (suppressed_count != nullptr) *suppressed_count = suppressed;
  return table.FilterByMask(keep);
}

Result<Table> SuppressUndersizedGroupCells(
    const Table& table, const std::vector<size_t>& key_indices, size_t k,
    size_t* cells_masked, size_t* deleted) {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1 for suppression");
  }
  for (size_t col : key_indices) {
    if (col >= table.num_columns()) {
      return Status::OutOfRange("key column index out of range");
    }
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  // Rows to mask, plus any rows already fully masked (key = all "*") —
  // the latter count toward the "*" group's size and, if that group stays
  // under k even after masking, must be deleted along with it.
  std::vector<size_t> to_mask;
  std::vector<size_t> star_rows;
  const Value star("*");
  for (const Group& group : fs.groups()) {
    bool all_star = !group.key.empty();
    for (const Value& v : group.key) {
      if (!(v == star)) {
        all_star = false;
        break;
      }
    }
    if (all_star) {
      star_rows = group.row_indices;
    } else if (group.size() < k) {
      to_mask.insert(to_mask.end(), group.row_indices.begin(),
                     group.row_indices.end());
    }
  }
  size_t star_group_size = star_rows.size();

  // Masking the cells requires the key columns to accept strings.
  std::vector<Attribute> attrs = table.schema().attributes();
  if (!to_mask.empty()) {
    for (size_t col : key_indices) {
      attrs[col].type = ValueType::kString;
    }
  }
  PSK_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(attrs)));
  Table out(std::move(out_schema));
  bool star_group_viable = star_group_size + to_mask.size() >= k;
  size_t masked_cells = 0;
  size_t deleted_rows = 0;
  std::vector<bool> mask_row(table.num_rows(), false);
  std::vector<bool> star_row(table.num_rows(), false);
  for (size_t row : to_mask) mask_row[row] = true;
  for (size_t row : star_rows) star_row[row] = true;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    // An undersized "*" group that cannot reach k even with the newly
    // masked rows is deleted together with them.
    if ((mask_row[row] || (star_row[row] && star_group_size < k)) &&
        !star_group_viable) {
      ++deleted_rows;
      continue;
    }
    std::vector<Value> values = table.Row(row);
    if (mask_row[row]) {
      for (size_t col : key_indices) {
        values[col] = star;
        ++masked_cells;
      }
    } else if (!to_mask.empty()) {
      // Key columns were re-typed to string; convert surviving values.
      for (size_t col : key_indices) {
        if (!values[col].is_null() &&
            values[col].type() != ValueType::kString) {
          values[col] = Value(values[col].ToString());
        }
      }
    }
    PSK_RETURN_IF_ERROR(out.AppendRow(std::move(values)));
  }
  if (cells_masked != nullptr) *cells_masked = masked_cells;
  if (deleted != nullptr) *deleted = deleted_rows;
  return out;
}

Result<MaskedMicrodata> Mask(const Table& initial_microdata,
                             const HierarchySet& hierarchies,
                             const LatticeNode& node, size_t k) {
  PSK_ASSIGN_OR_RETURN(
      Table generalized,
      ApplyGeneralization(initial_microdata, hierarchies, node));
  MaskedMicrodata mm{std::move(generalized), node, 0};
  if (k > 0) {
    std::vector<size_t> key_indices = mm.table.schema().KeyIndices();
    PSK_ASSIGN_OR_RETURN(
        Table suppressed,
        SuppressUndersizedGroups(mm.table, key_indices, k, &mm.suppressed));
    mm.table = std::move(suppressed);
  }
  return mm;
}

Result<EncodedMaskResult> MaskEncoded(const EncodedTable& encoded,
                                      const LatticeNode& node, size_t k,
                                      EncodedWorkspace* ws) {
  EncodedMaskResult result;
  if (k == 0) {
    // Mask() skips suppression entirely for k == 0; still produce the
    // partition, which callers use for group-level checks.
    PSK_RETURN_IF_ERROR(encoded.GroupByNode(node, ws));
    result.groups = ws->groups;
    return result;
  }
  PSK_RETURN_IF_ERROR(encoded.GroupByNode(node, ws));
  result.groups = ws->groups;
  result.keep.assign(encoded.num_rows(), false);
  for (size_t row = 0; row < encoded.num_rows(); ++row) {
    uint32_t gid = result.groups.row_gid[row];
    if (result.groups.group_sizes[gid] >= k) {
      result.keep[row] = true;
    } else {
      ++result.suppressed;
    }
  }
  result.surviving_groups = result.groups.GroupsAtLeast(k);
  return result;
}

Result<MaskedMicrodata> DecodeMasked(const EncodedTable& encoded,
                                     const LatticeNode& node, size_t k,
                                     EncodedWorkspace* ws) {
  PSK_ASSIGN_OR_RETURN(EncodedMaskResult mask,
                       MaskEncoded(encoded, node, k, ws));
  PSK_ASSIGN_OR_RETURN(
      Table table,
      encoded.Decode(node, mask.keep.empty() ? nullptr : &mask.keep));
  return MaskedMicrodata{std::move(table), node, mask.suppressed};
}

Result<size_t> CountTuplesViolatingK(const Table& table,
                                     const std::vector<size_t>& key_indices,
                                     size_t k) {
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  return fs.RowsInGroupsSmallerThan(k);
}

}  // namespace psk
