#ifndef PSK_ATTACK_LINKAGE_H_
#define PSK_ATTACK_LINKAGE_H_

#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/lattice/lattice.h"
#include "psk/table/table.h"

namespace psk {

/// Intruder simulators for the attacks the paper defends against (§2's
/// record-linkage attack) and the multi-release composition attack its
/// successors study. These make the library's threat model executable: a
/// data owner can measure what a concrete intruder, holding concrete
/// external information, actually learns from a release.

/// Result of linking one external record against a release.
struct LinkageOutcome {
  /// Release rows whose (generalized) keys match — the identity candidate
  /// set. 0 means the individual cannot be linked at all.
  size_t matching_rows = 0;
  /// Distinct confidential values across the matching rows, sorted.
  std::vector<Value> candidate_values;
  /// matching_rows == 1: the individual's record is singled out.
  bool identity_disclosed = false;
  /// Exactly one candidate value with at least one match: the intruder
  /// learns the confidential value without necessarily re-identifying.
  bool attribute_disclosed = false;
};

struct LinkageAttackSummary {
  size_t externals = 0;  ///< external records attacked
  size_t linked = 0;     ///< externals with at least one matching row
  size_t identity_disclosures = 0;
  size_t attribute_disclosures = 0;
  /// Mean candidate-set size over linked externals (the paper's 1/k bound
  /// shows up here).
  double avg_candidate_set = 0.0;
  std::vector<LinkageOutcome> outcomes;  ///< per external record
};

/// One release under attack: the masked table plus the lattice node it was
/// generalized to (so the intruder can generalize their own ground-level
/// knowledge to the same domains — the paper's "the intruder also knows
/// that Age was generalized to multiples of 10").
struct ReleaseView {
  const Table* table = nullptr;
  LatticeNode node;
};

/// Simulates the §2 record-linkage attack. `external` holds ground-level
/// values for (a subset of) the release's key attributes — matched by
/// name — plus any identifier columns the intruder knows.
/// `confidential_name` names the release column whose value the intruder
/// is after. `hierarchies` must be the release's hierarchy set.
Result<LinkageAttackSummary> SimulateLinkageAttack(
    const ReleaseView& release, const HierarchySet& hierarchies,
    const Table& external, const std::string& confidential_name);

/// Simulates the composition attack over several releases of the same
/// microdata: per external record, the candidate value set is the
/// intersection of the per-release candidate sets (the target's value must
/// appear in every release). All releases must share the key attributes
/// and the confidential column.
Result<LinkageAttackSummary> SimulateIntersectionAttack(
    const std::vector<ReleaseView>& releases, const HierarchySet& hierarchies,
    const Table& external, const std::string& confidential_name);

}  // namespace psk

#endif  // PSK_ATTACK_LINKAGE_H_
