#include "psk/attack/linkage.h"

#include <algorithm>
#include <set>

namespace psk {
namespace {

// For each release key attribute (in hierarchy order): its column in the
// release and in the external table.
struct KeyMapping {
  std::vector<size_t> release_cols;
  std::vector<size_t> external_cols;
  std::vector<size_t> hierarchy_slots;
};

Result<KeyMapping> MapKeys(const Table& release,
                           const HierarchySet& hierarchies,
                           const Table& external) {
  KeyMapping mapping;
  std::vector<size_t> release_keys = release.schema().KeyIndices();
  if (release_keys.size() != hierarchies.size()) {
    return Status::InvalidArgument(
        "release key attributes do not match the hierarchy set");
  }
  for (size_t slot = 0; slot < release_keys.size(); ++slot) {
    const std::string& name =
        release.schema().attribute(release_keys[slot]).name;
    Result<size_t> external_col = external.schema().IndexOf(name);
    if (!external_col.ok()) continue;  // intruder doesn't know this one
    mapping.release_cols.push_back(release_keys[slot]);
    mapping.external_cols.push_back(*external_col);
    mapping.hierarchy_slots.push_back(slot);
  }
  if (mapping.release_cols.empty()) {
    return Status::InvalidArgument(
        "the external table shares no key attribute with the release");
  }
  return mapping;
}

// Candidate confidential values (and match count) for one external record
// against one release.
Result<LinkageOutcome> LinkOne(const ReleaseView& release,
                               const HierarchySet& hierarchies,
                               const KeyMapping& mapping,
                               const Table& external, size_t external_row,
                               size_t confidential_col) {
  // Generalize the intruder's ground-level knowledge to the release's
  // domains.
  std::vector<Value> targets(mapping.release_cols.size());
  for (size_t i = 0; i < mapping.release_cols.size(); ++i) {
    size_t slot = mapping.hierarchy_slots[i];
    PSK_ASSIGN_OR_RETURN(
        targets[i],
        hierarchies.hierarchy(slot).Generalize(
            external.Get(external_row, mapping.external_cols[i]),
            release.node.levels[slot]));
  }
  LinkageOutcome outcome;
  std::set<Value> candidates;
  for (size_t row = 0; row < release.table->num_rows(); ++row) {
    bool match = true;
    for (size_t i = 0; i < mapping.release_cols.size(); ++i) {
      if (!(release.table->Get(row, mapping.release_cols[i]) ==
            targets[i])) {
        match = false;
        break;
      }
    }
    if (match) {
      ++outcome.matching_rows;
      candidates.insert(release.table->Get(row, confidential_col));
    }
  }
  outcome.candidate_values.assign(candidates.begin(), candidates.end());
  outcome.identity_disclosed = outcome.matching_rows == 1;
  outcome.attribute_disclosed =
      outcome.matching_rows > 0 && outcome.candidate_values.size() == 1;
  return outcome;
}

LinkageAttackSummary Summarize(std::vector<LinkageOutcome> outcomes) {
  LinkageAttackSummary summary;
  summary.externals = outcomes.size();
  double candidate_total = 0.0;
  for (const LinkageOutcome& outcome : outcomes) {
    if (outcome.matching_rows > 0) {
      ++summary.linked;
      candidate_total += static_cast<double>(outcome.matching_rows);
    }
    if (outcome.identity_disclosed) ++summary.identity_disclosures;
    if (outcome.attribute_disclosed) ++summary.attribute_disclosures;
  }
  if (summary.linked > 0) {
    summary.avg_candidate_set =
        candidate_total / static_cast<double>(summary.linked);
  }
  summary.outcomes = std::move(outcomes);
  return summary;
}

}  // namespace

Result<LinkageAttackSummary> SimulateLinkageAttack(
    const ReleaseView& release, const HierarchySet& hierarchies,
    const Table& external, const std::string& confidential_name) {
  if (release.table == nullptr) {
    return Status::InvalidArgument("release table is null");
  }
  PSK_ASSIGN_OR_RETURN(size_t confidential_col,
                       release.table->schema().IndexOf(confidential_name));
  PSK_ASSIGN_OR_RETURN(KeyMapping mapping,
                       MapKeys(*release.table, hierarchies, external));
  std::vector<LinkageOutcome> outcomes;
  outcomes.reserve(external.num_rows());
  for (size_t row = 0; row < external.num_rows(); ++row) {
    PSK_ASSIGN_OR_RETURN(
        LinkageOutcome outcome,
        LinkOne(release, hierarchies, mapping, external, row,
                confidential_col));
    outcomes.push_back(std::move(outcome));
  }
  return Summarize(std::move(outcomes));
}

Result<LinkageAttackSummary> SimulateIntersectionAttack(
    const std::vector<ReleaseView>& releases, const HierarchySet& hierarchies,
    const Table& external, const std::string& confidential_name) {
  if (releases.empty()) {
    return Status::InvalidArgument("at least one release is required");
  }
  // Per-release linkage first, then intersect candidate sets per external.
  std::vector<LinkageAttackSummary> per_release;
  per_release.reserve(releases.size());
  for (const ReleaseView& release : releases) {
    PSK_ASSIGN_OR_RETURN(
        LinkageAttackSummary summary,
        SimulateLinkageAttack(release, hierarchies, external,
                              confidential_name));
    per_release.push_back(std::move(summary));
  }

  std::vector<LinkageOutcome> outcomes;
  outcomes.reserve(external.num_rows());
  for (size_t row = 0; row < external.num_rows(); ++row) {
    LinkageOutcome combined;
    // Candidate-set intersection; the identity candidate count is the
    // smallest per-release count (the intruder's tightest bound).
    std::set<Value> intersection(
        per_release[0].outcomes[row].candidate_values.begin(),
        per_release[0].outcomes[row].candidate_values.end());
    combined.matching_rows = per_release[0].outcomes[row].matching_rows;
    for (size_t i = 1; i < per_release.size(); ++i) {
      const LinkageOutcome& outcome = per_release[i].outcomes[row];
      combined.matching_rows =
          std::min(combined.matching_rows, outcome.matching_rows);
      std::set<Value> next(outcome.candidate_values.begin(),
                           outcome.candidate_values.end());
      std::set<Value> kept;
      for (const Value& v : intersection) {
        if (next.count(v) > 0) kept.insert(v);
      }
      intersection = std::move(kept);
    }
    combined.candidate_values.assign(intersection.begin(),
                                     intersection.end());
    combined.identity_disclosed = combined.matching_rows == 1;
    combined.attribute_disclosed =
        combined.matching_rows > 0 && combined.candidate_values.size() == 1;
    outcomes.push_back(std::move(combined));
  }
  return Summarize(std::move(outcomes));
}

}  // namespace psk
