#include "psk/trace/trace.h"

#include <algorithm>

#include "psk/common/check.h"
#include "psk/common/durable_file.h"
#include "psk/common/json_writer.h"

namespace psk {
namespace {

// Spans and events carry counters/attrs in insertion order; the exports
// render them sorted by name so two traces that accumulated the same
// values in a different order still compare equal.
template <typename Pair>
std::vector<const Pair*> SortedByName(const std::vector<Pair>& pairs) {
  std::vector<const Pair*> sorted;
  sorted.reserve(pairs.size());
  for (const Pair& pair : pairs) sorted.push_back(&pair);
  std::sort(sorted.begin(), sorted.end(),
            [](const Pair* a, const Pair* b) { return a->first < b->first; });
  return sorted;
}

template <typename Pair>
void AddOrSum(std::vector<Pair>* pairs, std::string_view name,
              uint64_t value) {
  for (Pair& pair : *pairs) {
    if (pair.first == name) {
      pair.second += value;
      return;
    }
  }
  pairs->emplace_back(std::string(name), value);
}

}  // namespace

RunTrace::RunTrace(std::string root_name)
    : epoch_(std::chrono::steady_clock::now()) {
  Span root;
  root.name = std::move(root_name);
  root.start_ns = 0;
  spans_.push_back(std::move(root));
  open_.push_back(0);
}

void RunTrace::Begin(std::string name) {
  PSK_CHECK_MSG(!open_.empty(), "Begin() after Close()");
  Span span;
  span.name = std::move(name);
  span.start_ns = NowNs();
  size_t index = spans_.size();
  Current().children.push_back(index);
  spans_.push_back(std::move(span));
  open_.push_back(index);
}

void RunTrace::End() {
  PSK_CHECK_MSG(open_.size() > 1, "End() without a matching Begin()");
  Span& span = Current();
  span.duration_ns = NowNs() - span.start_ns;
  open_.pop_back();
}

void RunTrace::Counter(std::string_view name, uint64_t value) {
  PSK_CHECK_MSG(!open_.empty(), "Counter() after Close()");
  AddOrSum(&Current().counters, name, value);
}

void RunTrace::Attr(std::string_view name, std::string_view value) {
  PSK_CHECK_MSG(!open_.empty(), "Attr() after Close()");
  for (auto& pair : Current().attrs) {
    if (pair.first == name) {
      pair.second = std::string(value);
      return;
    }
  }
  Current().attrs.emplace_back(std::string(name), std::string(value));
}

void RunTrace::Timing(std::string_view name, uint64_t value) {
  PSK_CHECK_MSG(!open_.empty(), "Timing() after Close()");
  AddOrSum(&Current().timings, name, value);
}

void RunTrace::MergeEvents(std::vector<TraceEvent> events) {
  PSK_CHECK_MSG(!open_.empty(), "MergeEvents() after Close()");
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.order_key < b.order_key;
                   });
  for (TraceEvent& event : events) {
    Span span;
    span.name = std::move(event.name);
    span.start_ns = event.start_ns;
    span.duration_ns = event.duration_ns;
    span.counters = std::move(event.counters);
    span.attrs = std::move(event.attrs);
    size_t index = spans_.size();
    Current().children.push_back(index);
    spans_.push_back(std::move(span));
  }
}

int64_t RunTrace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RunTrace::Close() {
  while (open_.size() > 1) End();
  if (!open_.empty()) {
    Span& root = spans_[0];
    root.duration_ns = NowNs() - root.start_ns;
    open_.pop_back();
  }
}

void RunTrace::AppendJson(size_t index, JsonWriter* json) const {
  const Span& span = spans_[index];
  json->BeginObject();
  json->Key("name").String(span.name);
  json->Key("start_us").Int(span.start_ns / 1000);
  json->Key("dur_us").Int(span.duration_ns / 1000);
  if (!span.counters.empty()) {
    json->Key("counters").BeginObject();
    for (const auto* pair : SortedByName(span.counters)) {
      json->Key(pair->first).Uint(pair->second);
    }
    json->EndObject();
  }
  if (!span.attrs.empty()) {
    json->Key("attrs").BeginObject();
    for (const auto* pair : SortedByName(span.attrs)) {
      json->Key(pair->first).String(pair->second);
    }
    json->EndObject();
  }
  if (!span.timings.empty()) {
    json->Key("timings").BeginObject();
    for (const auto* pair : SortedByName(span.timings)) {
      json->Key(pair->first).Uint(pair->second);
    }
    json->EndObject();
  }
  if (!span.children.empty()) {
    json->Key("children").BeginArray();
    for (size_t child : span.children) AppendJson(child, json);
    json->EndArray();
  }
  json->EndObject();
}

std::string RunTrace::ToJson() {
  Close();
  JsonWriter json;
  json.BeginObject();
  json.Key("psk_trace_version").Int(1);
  json.Key("root");
  AppendJson(0, &json);
  json.EndObject();
  return json.TakeString();
}

void RunTrace::AppendSignature(size_t index, std::string* out) const {
  const Span& span = spans_[index];
  out->append(span.name);
  if (!span.attrs.empty()) {
    out->push_back('[');
    bool first = true;
    for (const auto* pair : SortedByName(span.attrs)) {
      if (!first) out->push_back(',');
      first = false;
      out->append(pair->first);
      out->push_back('=');
      out->append(pair->second);
    }
    out->push_back(']');
  }
  if (!span.counters.empty()) {
    out->push_back('{');
    bool first = true;
    for (const auto* pair : SortedByName(span.counters)) {
      if (!first) out->push_back(',');
      first = false;
      out->append(pair->first);
      out->push_back('=');
      out->append(std::to_string(pair->second));
    }
    out->push_back('}');
  }
  if (!span.children.empty()) {
    out->push_back('(');
    bool first = true;
    for (size_t child : span.children) {
      if (!first) out->push_back(' ');
      first = false;
      AppendSignature(child, out);
    }
    out->push_back(')');
  }
}

std::string RunTrace::StructureSignature() {
  Close();
  std::string out;
  AppendSignature(0, &out);
  return out;
}

Status RunTrace::WriteJsonFile(const std::string& path) {
  std::string doc = ToJson();
  doc.push_back('\n');
  return AtomicWriteFile(path, doc);
}

uint64_t RunTrace::TotalCounter(std::string_view name) {
  uint64_t total = 0;
  for (const Span& span : spans_) {
    for (const auto& pair : span.counters) {
      if (pair.first == name) total += pair.second;
    }
  }
  return total;
}

}  // namespace psk
