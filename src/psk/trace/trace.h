#ifndef PSK_TRACE_TRACE_H_
#define PSK_TRACE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "psk/common/result.h"

namespace psk {

/// One leaf span recorded by a worker during a parallel region. Workers
/// append into private TraceEventBuffers (no locks, no atomics); the
/// region owner merges every buffer into the RunTrace — sorted by
/// `order_key` — when the region's span closes. Because the merge key is a
/// pure function of the work item (e.g. the lattice node's snapshot key)
/// and never of which worker drew the item, the exported span structure is
/// identical for every thread count; only the recorded timings differ.
struct TraceEvent {
  std::string name;
  /// Deterministic merge key. Events with equal (typically empty) keys
  /// keep their buffer order, which is only deterministic for a
  /// single-producer buffer — parallel regions must set distinct keys.
  std::string order_key;
  int64_t start_ns = 0;     ///< steady-clock offset from the trace epoch
  int64_t duration_ns = 0;  ///< non-structural, like all timings
  /// Structural counters: part of the determinism contract.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Structural string attributes (e.g. node key, verdict stage).
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Single-producer event buffer; one per worker of a parallel region. The
/// producer appends without synchronization, the region owner takes the
/// events after the region's completion barrier (ParallelFor blocks, so
/// the barrier provides the necessary happens-before edge).
class TraceEventBuffer {
 public:
  void Record(TraceEvent event) { events_.push_back(std::move(event)); }
  bool empty() const { return events_.empty(); }
  std::vector<TraceEvent> Take() {
    std::vector<TraceEvent> out = std::move(events_);
    events_.clear();
    return out;
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Structured trace of one anonymization run: a tree of timed spans, each
/// carrying structural counters/attributes and non-structural timings.
///
/// Ownership and threading model (the "lock-cheap" contract):
///  - the span stack (Begin/End/Counter/Attr/Timing) is manipulated only
///    by the run's sequential control-flow thread, so it needs no locks;
///  - worker threads never touch the RunTrace directly — they record
///    TraceEvents into per-worker buffers, and the control-flow thread
///    merges the buffers at span close (MergeEvents), after the parallel
///    region's completion barrier;
///  - NowNs() is safe from any thread (it only reads the immutable epoch).
///
/// Determinism contract (DESIGN.md §7): two traces of the same run config
/// must agree on span names, nesting, order, counters and attributes for
/// every thread count; start/duration timestamps and everything recorded
/// via Timing() may differ. StructureSignature() renders exactly the
/// invariant part, so tests can compare traces across thread counts with
/// one string equality.
///
/// Disabled tracing is a null RunTrace*: TraceSpan and every call site
/// guard on the pointer, so the cost is one predictable branch per span.
class RunTrace {
 public:
  explicit RunTrace(std::string root_name = "run");

  RunTrace(const RunTrace&) = delete;
  RunTrace& operator=(const RunTrace&) = delete;

  /// Opens a child span of the innermost open span.
  void Begin(std::string name);
  /// Closes the innermost open span (never the root).
  void End();

  /// Adds `value` to counter `name` of the innermost open span (summing
  /// on repeat, so loops can contribute incrementally). Structural.
  void Counter(std::string_view name, uint64_t value);
  /// Sets string attribute `name` on the innermost open span. Structural.
  void Attr(std::string_view name, std::string_view value);
  /// Records a non-structural number (durations, per-worker busy time,
  /// queue depths) on the innermost open span. Summing like Counter.
  void Timing(std::string_view name, uint64_t value);

  /// Merges worker events as leaf children of the innermost open span,
  /// stably sorted by order_key (ties keep input order). Call only after
  /// the parallel region's completion barrier.
  void MergeEvents(std::vector<TraceEvent> events);

  /// Steady-clock nanoseconds since the trace epoch; any thread.
  int64_t NowNs() const;

  /// Closes every span still open, the root included. Idempotent; called
  /// automatically by ToJson/WriteJsonFile/StructureSignature.
  void Close();

  /// The whole trace as one JSON document:
  ///   {"psk_trace_version":1, "root": {"name":..., "start_us":...,
  ///    "dur_us":..., "counters":{...}, "attrs":{...}, "timings":{...},
  ///    "children":[...]}}
  std::string ToJson();

  /// Canonical rendering of the structural part only (names, nesting,
  /// counters, attrs — no timings): byte-identical across thread counts
  /// for a deterministic run.
  std::string StructureSignature();

  /// Atomically writes ToJson() (plus a trailing newline) to `path`.
  Status WriteJsonFile(const std::string& path);

  /// Total counter value summed over the whole tree (test helper).
  uint64_t TotalCounter(std::string_view name);

 private:
  struct Span {
    std::string name;
    int64_t start_ns = 0;
    int64_t duration_ns = 0;
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, std::string>> attrs;
    std::vector<std::pair<std::string, uint64_t>> timings;
    std::vector<size_t> children;
  };

  Span& Current() { return spans_[open_.back()]; }
  void AppendJson(size_t index, class JsonWriter* json) const;
  void AppendSignature(size_t index, std::string* out) const;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;   // spans_[0] is the root
  std::vector<size_t> open_;  // stack of open span indices
};

/// RAII span: opens on construction, closes on destruction. Null-safe —
/// with trace == nullptr every member costs one branch, which is the
/// entire overhead of compiled-in-but-disabled tracing.
class TraceSpan {
 public:
  TraceSpan(RunTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) trace_->Begin(name);
  }
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Counter(std::string_view name, uint64_t value) {
    if (trace_ != nullptr) trace_->Counter(name, value);
  }
  void Attr(std::string_view name, std::string_view value) {
    if (trace_ != nullptr) trace_->Attr(name, value);
  }
  void Timing(std::string_view name, uint64_t value) {
    if (trace_ != nullptr) trace_->Timing(name, value);
  }

  RunTrace* trace() const { return trace_; }

 private:
  RunTrace* trace_;
};

}  // namespace psk

#endif  // PSK_TRACE_TRACE_H_
