#include "psk/anonymity/diversity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "psk/anonymity/psensitive.h"
#include "psk/table/group_by.h"

namespace psk {
namespace {

Status ValidateInputs(const Table& table,
                      const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  for (size_t col : confidential_indices) {
    if (col >= table.num_columns()) {
      return Status::OutOfRange("confidential column index out of range: " +
                                std::to_string(col));
    }
  }
  return Status::OK();
}

// Within-group value counts for one confidential attribute.
std::unordered_map<Value, size_t, ValueHash> GroupCounts(const Table& table,
                                                         const Group& group,
                                                         size_t col) {
  std::unordered_map<Value, size_t, ValueHash> counts;
  for (size_t row : group.row_indices) {
    ++counts[table.Get(row, col)];
  }
  return counts;
}

}  // namespace

Result<bool> IsDistinctLDiverse(const Table& table,
                                const std::vector<size_t>& key_indices,
                                const std::vector<size_t>& confidential_indices,
                                size_t l) {
  // Distinct l-diversity is definitionally p-sensitivity with p = l.
  return IsPSensitive(table, key_indices, confidential_indices, l);
}

bool IsDistinctLDiverseEncoded(const EncodedGroups& groups,
                               const EncodedTable& encoded, size_t l,
                               EncodedDistinctScratch* scratch) {
  return IsPSensitiveEncoded(groups, encoded, l, /*min_group_size=*/1,
                             scratch);
}

Result<bool> IsEntropyLDiverse(const Table& table,
                               const std::vector<size_t>& key_indices,
                               const std::vector<size_t>& confidential_indices,
                               double l) {
  if (l < 1.0) return Status::InvalidArgument("l must be >= 1");
  PSK_RETURN_IF_ERROR(ValidateInputs(table, confidential_indices));
  PSK_ASSIGN_OR_RETURN(double min_l,
                       EntropyDiversityL(table, key_indices,
                                         confidential_indices));
  if (table.num_rows() == 0) return true;
  // Tolerate rounding at the boundary (entropy of a uniform group of l
  // values is exactly log l).
  return min_l >= l - 1e-9;
}

Result<double> EntropyDiversityL(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices) {
  PSK_RETURN_IF_ERROR(ValidateInputs(table, confidential_indices));
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return 0.0;
  double min_entropy = HUGE_VAL;
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      auto counts = GroupCounts(table, group, col);
      double entropy = 0.0;
      double n = static_cast<double>(group.size());
      for (const auto& [value, count] : counts) {
        double p = static_cast<double>(count) / n;
        entropy -= p * std::log(p);
      }
      min_entropy = std::min(min_entropy, entropy);
    }
  }
  return std::exp(min_entropy);
}

Result<bool> IsRecursiveCLDiverse(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices, double c, size_t l) {
  if (c <= 0.0) return Status::InvalidArgument("c must be > 0");
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  PSK_RETURN_IF_ERROR(ValidateInputs(table, confidential_indices));
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      auto counts = GroupCounts(table, group, col);
      if (counts.size() < l) return false;
      std::vector<size_t> r;
      r.reserve(counts.size());
      for (const auto& [value, count] : counts) r.push_back(count);
      std::sort(r.begin(), r.end(), std::greater<size_t>());
      size_t tail = 0;
      for (size_t i = l - 1; i < r.size(); ++i) tail += r[i];
      if (static_cast<double>(r[0]) >= c * static_cast<double>(tail)) {
        return false;
      }
    }
  }
  return true;
}

namespace {

// EMD between a group's distribution and the global distribution for one
// confidential attribute. Values are the global distinct values; for
// numeric attributes they are sorted and the ordered-distance EMD
// (mean absolute prefix sum, normalized by (m-1)) is used; for the rest,
// the equal-distance EMD = total variation distance.
Result<double> GroupEmd(const Table& table, const Group& group, size_t col,
                        const std::map<Value, size_t>& global_counts,
                        bool numeric) {
  double n_global = static_cast<double>(table.num_rows());
  double n_group = static_cast<double>(group.size());
  auto group_counts = GroupCounts(table, group, col);

  if (!numeric) {
    // Equal ground distance: EMD = 1/2 * L1.
    double l1 = 0.0;
    for (const auto& [value, count] : global_counts) {
      double p = static_cast<double>(count) / n_global;
      auto it = group_counts.find(value);
      double q = it == group_counts.end()
                     ? 0.0
                     : static_cast<double>(it->second) / n_group;
      l1 += std::fabs(p - q);
    }
    return l1 / 2.0;
  }

  // Ordered distance over the sorted global values (std::map iterates in
  // value order): EMD = sum |prefix(p - q)| / (m - 1).
  size_t m = global_counts.size();
  if (m <= 1) return 0.0;
  double prefix = 0.0;
  double emd = 0.0;
  for (const auto& [value, count] : global_counts) {
    double p = static_cast<double>(count) / n_global;
    auto it = group_counts.find(value);
    double q = it == group_counts.end()
                   ? 0.0
                   : static_cast<double>(it->second) / n_group;
    prefix += p - q;
    emd += std::fabs(prefix);
  }
  return emd / static_cast<double>(m - 1);
}

}  // namespace

Result<double> TCloseness(const Table& table,
                          const std::vector<size_t>& key_indices,
                          const std::vector<size_t>& confidential_indices) {
  PSK_RETURN_IF_ERROR(ValidateInputs(table, confidential_indices));
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return 0.0;

  double worst = 0.0;
  for (size_t col : confidential_indices) {
    // Global distribution (value-ordered for the numeric EMD). Counted
    // over interned ids first, so the ordered map is touched once per
    // distinct value instead of once per row.
    std::unordered_map<ValueId, size_t> id_counts;
    id_counts.reserve(table.num_rows());
    for (ValueId id : table.column_ids(col)) ++id_counts[id];
    std::map<Value, size_t> global_counts;
    for (const auto& [id, count] : id_counts) {
      global_counts[table.store()->Get(id)] += count;
    }
    ValueType type = table.schema().attribute(col).type;
    bool numeric = type == ValueType::kInt64 || type == ValueType::kDouble;
    for (const Group& group : fs.groups()) {
      PSK_ASSIGN_OR_RETURN(
          double emd, GroupEmd(table, group, col, global_counts, numeric));
      worst = std::max(worst, emd);
    }
  }
  return worst;
}

Result<bool> IsTClose(const Table& table,
                      const std::vector<size_t>& key_indices,
                      const std::vector<size_t>& confidential_indices,
                      double t) {
  if (t < 0.0) return Status::InvalidArgument("t must be >= 0");
  PSK_ASSIGN_OR_RETURN(
      double worst, TCloseness(table, key_indices, confidential_indices));
  return worst <= t + 1e-12;
}

}  // namespace psk
