#ifndef PSK_ANONYMITY_PRESENCE_H_
#define PSK_ANONYMITY_PRESENCE_H_

#include <vector>

#include "psk/common/result.h"
#include "psk/table/table.h"

namespace psk {

/// delta-presence (Nergiz, Atzori & Clifton 2007): when the released
/// microdata is a *subset* of a publicly known population (e.g. "patients
/// of this clinic" drawn from a census), an intruder learns something from
/// mere membership. For an individual t in the population, the inference
/// probability is
///
///   P(t in released | release) = |G(t) in released| / |G(t) in population|
///
/// where G(t) is t's QI-group at the release's generalization level. The
/// release is (delta_min, delta_max)-present when that probability lies in
/// [delta_min, delta_max] for every individual.
struct DeltaPresence {
  double delta_min = 0.0;
  double delta_max = 0.0;
};

/// Computes the presence bounds of `released` with respect to
/// `population`. Both tables must already be generalized to the same
/// domains (same key-attribute value spaces); `released_key_indices` /
/// `population_key_indices` select the corresponding columns. Population
/// groups with no released members contribute delta 0; released groups
/// missing from the population are a contract violation (InvalidArgument),
/// since a release must be a subset of its population.
Result<DeltaPresence> ComputeDeltaPresence(
    const Table& released, const std::vector<size_t>& released_key_indices,
    const Table& population,
    const std::vector<size_t>& population_key_indices);

/// True iff every individual's inference probability lies within
/// [delta_min, delta_max].
Result<bool> IsDeltaPresent(const Table& released,
                            const std::vector<size_t>& released_key_indices,
                            const Table& population,
                            const std::vector<size_t>& population_key_indices,
                            double delta_min, double delta_max);

}  // namespace psk

#endif  // PSK_ANONYMITY_PRESENCE_H_
