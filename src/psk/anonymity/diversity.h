#ifndef PSK_ANONYMITY_DIVERSITY_H_
#define PSK_ANONYMITY_DIVERSITY_H_

#include <cstdint>
#include <vector>

#include "psk/anonymity/psensitive.h"
#include "psk/common/result.h"
#include "psk/table/table.h"

namespace psk {

/// Successor privacy models to p-sensitive k-anonymity, published the same
/// year (l-diversity, Machanavajjhala et al. 2006) and shortly after
/// (t-closeness, Li et al. 2007). They are included both as baselines the
/// library's benchmarks compare against and because *distinct*
/// l-diversity coincides exactly with p-sensitivity — a relationship the
/// tests exploit as an oracle.

/// Distinct l-diversity: every QI-group has at least `l` distinct values
/// of each confidential attribute. Equivalent to the paper's p-sensitivity
/// with p = l.
Result<bool> IsDistinctLDiverse(const Table& table,
                                const std::vector<size_t>& key_indices,
                                const std::vector<size_t>& confidential_indices,
                                size_t l);

/// Code-path overload of distinct l-diversity over an encoded
/// QI-partition; identical to IsPSensitiveEncoded with p = l over every
/// group (distinct l-diversity == p-sensitivity with p = l).
bool IsDistinctLDiverseEncoded(const EncodedGroups& groups,
                               const EncodedTable& encoded, size_t l,
                               EncodedDistinctScratch* scratch);

/// Entropy l-diversity: for every QI-group and confidential attribute,
/// the entropy of the value distribution within the group is at least
/// log(l). Requires l >= 1 (l = 1 is trivially satisfied by non-empty
/// groups).
Result<bool> IsEntropyLDiverse(const Table& table,
                               const std::vector<size_t>& key_indices,
                               const std::vector<size_t>& confidential_indices,
                               double l);

/// Recursive (c, l)-diversity: in every QI-group, for each confidential
/// attribute with within-group descending value counts r_1 >= r_2 >= ...,
/// r_1 < c * (r_l + r_{l+1} + ... ). Groups with fewer than l distinct
/// values fail. Requires c > 0 and l >= 1.
Result<bool> IsRecursiveCLDiverse(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices, double c, size_t l);

/// The largest l such that the table is entropy l-diverse:
/// exp(min over groups and confidential attributes of the within-group
/// entropy). Returns 0 for an empty table.
Result<double> EntropyDiversityL(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices);

/// t-closeness: the distance between each QI-group's confidential-value
/// distribution and the whole-table distribution is at most t.
///
/// Distance is the Earth Mover's Distance with ground distance chosen by
/// attribute type, following Li et al.:
///  - equal distance (total variation) for categorical attributes;
///  - ordered distance over the sorted global value list for numeric
///    attributes.
Result<bool> IsTClose(const Table& table,
                      const std::vector<size_t>& key_indices,
                      const std::vector<size_t>& confidential_indices,
                      double t);

/// The smallest t for which the table is t-close: the maximum over
/// QI-groups and confidential attributes of the EMD described above.
/// Returns 0 for an empty table.
Result<double> TCloseness(const Table& table,
                          const std::vector<size_t>& key_indices,
                          const std::vector<size_t>& confidential_indices);

}  // namespace psk

#endif  // PSK_ANONYMITY_DIVERSITY_H_
