#include "psk/anonymity/presence.h"

#include <unordered_map>

#include "psk/table/group_by.h"

namespace psk {

Result<DeltaPresence> ComputeDeltaPresence(
    const Table& released, const std::vector<size_t>& released_key_indices,
    const Table& population,
    const std::vector<size_t>& population_key_indices) {
  if (released_key_indices.size() != population_key_indices.size()) {
    return Status::InvalidArgument(
        "released and population key attribute lists differ in length");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet released_fs,
                       FrequencySet::Compute(released, released_key_indices));
  PSK_ASSIGN_OR_RETURN(
      FrequencySet population_fs,
      FrequencySet::Compute(population, population_key_indices));

  std::unordered_map<std::vector<Value>, size_t, CompositeKeyHash>
      released_sizes;
  released_sizes.reserve(released_fs.num_groups());
  for (const Group& group : released_fs.groups()) {
    released_sizes.emplace(group.key, group.size());
  }

  DeltaPresence presence;
  if (population.num_rows() == 0) return presence;
  presence.delta_min = 1.0;
  presence.delta_max = 0.0;
  size_t matched_released = 0;
  for (const Group& group : population_fs.groups()) {
    auto it = released_sizes.find(group.key);
    size_t in_release = it == released_sizes.end() ? 0 : it->second;
    if (in_release > group.size()) {
      return Status::InvalidArgument(
          "released group larger than its population group; the release is "
          "not a subset of the population");
    }
    matched_released += in_release;
    double delta =
        static_cast<double>(in_release) / static_cast<double>(group.size());
    presence.delta_min = std::min(presence.delta_min, delta);
    presence.delta_max = std::max(presence.delta_max, delta);
  }
  if (matched_released != released.num_rows()) {
    return Status::InvalidArgument(
        "some released groups have no population counterpart; the release "
        "is not a subset of the population");
  }
  return presence;
}

Result<bool> IsDeltaPresent(const Table& released,
                            const std::vector<size_t>& released_key_indices,
                            const Table& population,
                            const std::vector<size_t>& population_key_indices,
                            double delta_min, double delta_max) {
  if (delta_min < 0.0 || delta_max > 1.0 || delta_min > delta_max) {
    return Status::InvalidArgument(
        "require 0 <= delta_min <= delta_max <= 1");
  }
  PSK_ASSIGN_OR_RETURN(
      DeltaPresence presence,
      ComputeDeltaPresence(released, released_key_indices, population,
                           population_key_indices));
  return presence.delta_min >= delta_min - 1e-12 &&
         presence.delta_max <= delta_max + 1e-12;
}

}  // namespace psk
