#ifndef PSK_ANONYMITY_PSENSITIVE_H_
#define PSK_ANONYMITY_PSENSITIVE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "psk/anonymity/frequency_stats.h"
#include "psk/common/result.h"
#include "psk/table/encoded.h"
#include "psk/table/table.h"

namespace psk {

/// Where a p-sensitive k-anonymity check stopped. The improved checker
/// (Algorithm 2) can reject a masked microdata at one of two cheap gates
/// before touching any group.
enum class CheckStage {
  kPassed = 0,           ///< property satisfied
  kCondition1 = 1,       ///< rejected: p > maxP (First necessary condition)
  kCondition2 = 2,       ///< rejected: too many QI-groups (Second condition)
  kKAnonymity = 3,       ///< rejected: some QI-group smaller than k
  kGroupDetail = 4,      ///< rejected: some group lacks p distinct values
};

/// Outcome of a property check, with enough telemetry to measure how much
/// work the necessary conditions saved (the paper's §5 future-work
/// comparison).
struct CheckOutcome {
  bool satisfied = false;
  CheckStage stage = CheckStage::kPassed;
  /// QI-groups whose confidential values were actually inspected.
  size_t groups_examined = 0;
};

/// True iff every QI-group of `table` contains at least `p` distinct values
/// for each confidential attribute — the p-sensitivity half of Definition 2
/// (k-anonymity checked separately). Requires p >= 1. An empty table is
/// vacuously p-sensitive.
Result<bool> IsPSensitive(const Table& table,
                          const std::vector<size_t>& key_indices,
                          const std::vector<size_t>& confidential_indices,
                          size_t p);

/// Algorithm 1 (basic test): checks k-anonymity via the frequency set, then
/// walks every (group, confidential attribute) pair counting distinct
/// values, breaking out at the first violation.
Result<CheckOutcome> CheckBasic(const Table& table,
                                const std::vector<size_t>& key_indices,
                                const std::vector<size_t>& confidential_indices,
                                size_t p, size_t k);

/// Algorithm 2 (improved test): first applies the two necessary conditions
/// — Condition 1 (p <= maxP) and Condition 2 (#groups <= maxGroups) — and
/// only runs the detailed per-group check when both pass.
///
/// `bounds`, when provided, supplies maxP and maxGroups(p) precomputed on
/// the *initial* microdata; Theorems 1 and 2 guarantee they remain valid
/// upper bounds for any MM derived by generalization + suppression, so
/// lattice searches compute them once. When absent they are computed from
/// `table` itself.
struct ConditionBounds {
  size_t max_p = 0;
  uint64_t max_groups = 0;  ///< maxGroups for the p being checked
};

Result<CheckOutcome> CheckImproved(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices, size_t p, size_t k,
    const std::optional<ConditionBounds>& bounds = std::nullopt);

/// Convenience wrappers using the schema's key/confidential attributes.
Result<CheckOutcome> CheckBasic(const Table& table, size_t p, size_t k);
Result<CheckOutcome> CheckImproved(const Table& table, size_t p, size_t k);

/// The sensitivity of a masked microdata: the largest p for which the
/// table is p-sensitive, i.e. the minimum over all QI-groups and
/// confidential attributes of the per-group distinct-value count. (Table 3
/// of the paper is 1-sensitive: min distinct count = 1.) Returns 0 for an
/// empty table.
Result<size_t> SensitivityP(const Table& table,
                            const std::vector<size_t>& key_indices,
                            const std::vector<size_t>& confidential_indices);

/// Extension implementing the paper's follow-up work (Campan & Truta,
/// "extended p-sensitive k-anonymity"): sensitivity counted over
/// *categories* of confidential values instead of raw values. The
/// categories are the ancestors of the values in `value_hierarchy` at
/// `level` — e.g. with Illness categorized into {Cancer, Chronic, Viral},
/// a group holding {Colon Cancer, Breast Cancer} has 2 distinct raw values
/// but only 1 category, and still discloses "the patient has cancer".
/// `confidential_col` must be a confidential attribute; `level` must be a
/// valid level of the hierarchy.
Result<bool> IsPSensitiveHierarchical(
    const Table& table, const std::vector<size_t>& key_indices,
    size_t confidential_col, const class AttributeHierarchy& value_hierarchy,
    int level, size_t p);

/// The largest p satisfied by IsPSensitiveHierarchical — the minimum over
/// QI-groups of the number of distinct value categories. 0 for an empty
/// table.
Result<size_t> HierarchicalSensitivityP(
    const Table& table, const std::vector<size_t>& key_indices,
    size_t confidential_col, const class AttributeHierarchy& value_hierarchy,
    int level);

/// Reusable buffers for the encoded p-sensitivity check: a counting-sort
/// index of rows by group id plus a generation-stamped seen-array over
/// confidential codes. One instance per worker thread.
class EncodedDistinctScratch {
 public:
  EncodedDistinctScratch() = default;

 private:
  friend bool IsPSensitiveEncoded(const EncodedGroups& groups,
                                  const EncodedTable& encoded, size_t p,
                                  size_t min_group_size,
                                  EncodedDistinctScratch* scratch);

  std::vector<uint32_t> offsets_;  // group -> [offsets_[g], offsets_[g+1])
  std::vector<uint32_t> rows_;     // row indices sorted by group id
  std::vector<uint32_t> cursor_;
  std::vector<uint32_t> stamp_;    // per confidential code, gen-stamped
  uint32_t generation_ = 0;
};

/// Code-path p-sensitivity over an encoded QI-partition: every group of
/// size >= `min_group_size` must hold >= `p` distinct codes of every
/// confidential column. Distinct counting is a counting sort of the rows
/// by group id plus a stamped seen-array over the confidential code space
/// — no hashing, early exit at `p` per group. min_group_size = k skips
/// exactly the groups suppression removes (the evaluator's detail check);
/// min_group_size <= 1 checks every group. Agrees exactly with the legacy
/// Value-keyed scan. Vacuously true when p <= 1 or there is no
/// confidential column.
bool IsPSensitiveEncoded(const EncodedGroups& groups,
                         const EncodedTable& encoded, size_t p,
                         size_t min_group_size,
                         EncodedDistinctScratch* scratch);

/// Number of attribute disclosures in a masked microdata: the count of
/// (QI-group, confidential attribute) pairs where every tuple of the group
/// carries the same value — an intruder who links any member of the group
/// learns that value with certainty. This is the quantity reported in
/// Table 8 of the paper.
Result<size_t> CountAttributeDisclosures(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices);

}  // namespace psk

#endif  // PSK_ANONYMITY_PSENSITIVE_H_
