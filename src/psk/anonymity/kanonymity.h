#ifndef PSK_ANONYMITY_KANONYMITY_H_
#define PSK_ANONYMITY_KANONYMITY_H_

#include <vector>

#include "psk/common/result.h"
#include "psk/table/group_by.h"
#include "psk/table/table.h"

namespace psk {

/// Checks Definition 1 (k-anonymity): every combination of key-attribute
/// values present in `table` occurs at least `k` times. `key_indices`
/// selects the quasi-identifier columns. An empty table is vacuously
/// k-anonymous.
Result<bool> IsKAnonymous(const Table& table,
                          const std::vector<size_t>& key_indices, size_t k);

/// Convenience overload using the schema's key attributes.
Result<bool> IsKAnonymous(const Table& table, size_t k);

/// Code-path overload over an encoded QI-partition (EncodedTable::
/// GroupByNode / GroupByCodes): agrees exactly with the Value-keyed check
/// over the equivalent grouping. An empty partition is vacuously
/// k-anonymous.
Result<bool> IsKAnonymousEncoded(const EncodedGroups& groups, size_t k);

/// The largest k for which `table` is k-anonymous — the size of the
/// smallest QI-group. Returns 0 for an empty table.
Result<size_t> AnonymityK(const Table& table,
                          const std::vector<size_t>& key_indices);

}  // namespace psk

#endif  // PSK_ANONYMITY_KANONYMITY_H_
