#include "psk/anonymity/kanonymity.h"

#include "psk/table/group_by.h"

namespace psk {

Result<bool> IsKAnonymous(const Table& table,
                          const std::vector<size_t>& key_indices, size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return true;
  return fs.MinGroupSize() >= k;
}

Result<bool> IsKAnonymous(const Table& table, size_t k) {
  return IsKAnonymous(table, table.schema().KeyIndices(), k);
}

Result<bool> IsKAnonymousEncoded(const EncodedGroups& groups, size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (groups.num_groups() == 0) return true;
  return groups.MinGroupSize() >= k;
}

Result<size_t> AnonymityK(const Table& table,
                          const std::vector<size_t>& key_indices) {
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  return fs.MinGroupSize();
}

}  // namespace psk
