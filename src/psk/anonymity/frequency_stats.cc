#include "psk/anonymity/frequency_stats.h"

#include <algorithm>
#include <sstream>

#include "psk/table/group_by.h"

namespace psk {

Result<FrequencyStats> FrequencyStats::Compute(
    const Table& table, const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  for (size_t col : confidential_indices) {
    if (col >= table.num_columns()) {
      return Status::OutOfRange("confidential column index out of range: " +
                                std::to_string(col));
    }
  }
  FrequencyStats stats;
  stats.n_ = table.num_rows();
  stats.freq_.reserve(confidential_indices.size());
  stats.cum_freq_.reserve(confidential_indices.size());
  for (size_t col : confidential_indices) {
    std::vector<size_t> f = DescendingValueFrequencies(table, col);
    std::vector<size_t> cf(f.size());
    size_t acc = 0;
    for (size_t i = 0; i < f.size(); ++i) {
      acc += f[i];
      cf[i] = acc;
    }
    stats.freq_.push_back(std::move(f));
    stats.cum_freq_.push_back(std::move(cf));
  }
  size_t max_p = stats.MaxP();
  stats.cf_max_.resize(max_p, 0);
  for (size_t i = 0; i < max_p; ++i) {
    for (size_t j = 0; j < stats.q(); ++j) {
      stats.cf_max_[i] = std::max(stats.cf_max_[i], stats.cum_freq_[j][i]);
    }
  }
  return stats;
}

Result<FrequencyStats> FrequencyStats::Compute(const Table& table) {
  return Compute(table, table.schema().ConfidentialIndices());
}

Result<FrequencyStats> FrequencyStats::Compute(const EncodedTable& encoded) {
  if (encoded.num_confidential() == 0) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  FrequencyStats stats;
  stats.n_ = encoded.num_rows();
  stats.freq_.reserve(encoded.num_confidential());
  stats.cum_freq_.reserve(encoded.num_confidential());
  for (size_t j = 0; j < encoded.num_confidential(); ++j) {
    std::vector<size_t> counts(encoded.confidential_cardinality(j), 0);
    for (uint32_t code : encoded.confidential_codes(j)) ++counts[code];
    std::sort(counts.begin(), counts.end(), std::greater<size_t>());
    std::vector<size_t> cf(counts.size());
    size_t acc = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      acc += counts[i];
      cf[i] = acc;
    }
    stats.freq_.push_back(std::move(counts));
    stats.cum_freq_.push_back(std::move(cf));
  }
  size_t max_p = stats.MaxP();
  stats.cf_max_.resize(max_p, 0);
  for (size_t i = 0; i < max_p; ++i) {
    for (size_t j = 0; j < stats.q(); ++j) {
      stats.cf_max_[i] = std::max(stats.cf_max_[i], stats.cum_freq_[j][i]);
    }
  }
  return stats;
}

size_t FrequencyStats::MaxP() const {
  size_t max_p = SIZE_MAX;
  for (const auto& f : freq_) {
    max_p = std::min(max_p, f.size());
  }
  return max_p == SIZE_MAX ? 0 : max_p;
}

Result<uint64_t> FrequencyStats::MaxGroups(size_t p) const {
  if (p < 2) {
    return Status::InvalidArgument(
        "Condition 2 is defined for p >= 2; got p = " + std::to_string(p));
  }
  if (p > MaxP()) {
    return Status::FailedPrecondition(
        "p = " + std::to_string(p) + " exceeds maxP = " +
        std::to_string(MaxP()) + " (Condition 1 already fails)");
  }
  uint64_t best = UINT64_MAX;
  // min over i = 1..p-1 of floor((n - cf_{p-i}) / i); cf_max_ is 0-based so
  // the paper's cf_{p-i} is cf_max_[p - i - 1].
  for (size_t i = 1; i <= p - 1; ++i) {
    size_t cf = cf_max_[p - i - 1];
    uint64_t numerator = n_ >= cf ? n_ - cf : 0;
    best = std::min(best, numerator / i);
  }
  return best;
}

std::string FrequencyStats::ToString() const {
  std::ostringstream os;
  os << "n = " << n_ << "\n";
  for (size_t j = 0; j < q(); ++j) {
    os << "S" << (j + 1) << " (s=" << s(j) << "): f = [";
    for (size_t i = 0; i < s(j); ++i) {
      if (i > 0) os << ", ";
      os << f(j, i);
    }
    os << "], cf = [";
    for (size_t i = 0; i < s(j); ++i) {
      if (i > 0) os << ", ";
      os << cf(j, i);
    }
    os << "]\n";
  }
  os << "cf_max = [";
  for (size_t i = 0; i < cf_max_.size(); ++i) {
    if (i > 0) os << ", ";
    os << cf_max_[i];
  }
  os << "]\n";
  return os.str();
}

}  // namespace psk
