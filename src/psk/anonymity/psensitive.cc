#include "psk/anonymity/psensitive.h"

#include <unordered_set>

#include "psk/hierarchy/hierarchy.h"
#include "psk/table/group_by.h"

namespace psk {
namespace {

// Distinct values of column `col` among the rows of `group`, counting at
// most `cap` (early exit once the check is decided).
size_t DistinctInGroup(const Table& table, const Group& group, size_t col,
                       size_t cap) {
  std::unordered_set<Value, ValueHash> seen;
  for (size_t row : group.row_indices) {
    seen.insert(table.Get(row, col));
    if (seen.size() >= cap) return seen.size();
  }
  return seen.size();
}

Status ValidatePK(size_t p, size_t k) {
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (p > k) {
    return Status::InvalidArgument(
        "p must be <= k (a group of k tuples holds at most k distinct "
        "values); got p = " +
        std::to_string(p) + ", k = " + std::to_string(k));
  }
  return Status::OK();
}

// The detailed per-group check shared by Algorithms 1 and 2.
Result<CheckOutcome> DetailedCheck(const Table& table, const FrequencySet& fs,
                                   const std::vector<size_t>& conf_indices,
                                   size_t p, CheckOutcome outcome) {
  for (const Group& group : fs.groups()) {
    ++outcome.groups_examined;
    for (size_t col : conf_indices) {
      if (DistinctInGroup(table, group, col, p) < p) {
        outcome.satisfied = false;
        outcome.stage = CheckStage::kGroupDetail;
        return outcome;
      }
    }
  }
  outcome.satisfied = true;
  outcome.stage = CheckStage::kPassed;
  return outcome;
}

}  // namespace

/// Groups no larger than this are scanned branch-free (no early exit);
/// larger groups keep the early-exit loop, whose saved work dominates
/// once the group is much bigger than p.
constexpr uint32_t kBranchFreeGroupLimit = 64;

bool IsPSensitiveEncoded(const EncodedGroups& groups,
                         const EncodedTable& encoded, size_t p,
                         size_t min_group_size,
                         EncodedDistinctScratch* scratch) {
  if (p <= 1 || encoded.num_confidential() == 0) return true;
  size_t num_groups = groups.num_groups();
  size_t num_rows = groups.num_rows();

  // Counting sort: rows_[offsets_[g] .. offsets_[g+1]) are group g's rows.
  scratch->offsets_.assign(num_groups + 1, 0);
  for (uint32_t gid : groups.row_gid) ++scratch->offsets_[gid + 1];
  for (size_t g = 0; g < num_groups; ++g) {
    scratch->offsets_[g + 1] += scratch->offsets_[g];
  }
  scratch->cursor_.assign(scratch->offsets_.begin(),
                          scratch->offsets_.end() - 1);
  scratch->rows_.resize(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    scratch->rows_[scratch->cursor_[groups.row_gid[row]]++] =
        static_cast<uint32_t>(row);
  }

  for (size_t j = 0; j < encoded.num_confidential(); ++j) {
    const uint32_t* codes = encoded.confidential_codes(j).data();
    uint32_t cardinality = encoded.confidential_cardinality(j);
    if (scratch->stamp_.size() < cardinality) {
      scratch->stamp_.resize(cardinality, 0);
    }
    for (size_t g = 0; g < num_groups; ++g) {
      if (groups.group_sizes[g] < min_group_size) continue;
      if (++scratch->generation_ == 0) {  // stamp wrap: reset
        std::fill(scratch->stamp_.begin(), scratch->stamp_.end(), 0u);
        scratch->generation_ = 1;
      }
      uint32_t gen = scratch->generation_;
      const uint32_t begin = scratch->offsets_[g];
      const uint32_t end = scratch->offsets_[g + 1];
      size_t distinct = 0;
      if (end - begin <= kBranchFreeGroupLimit) {
        // Branch-free counting scan: k-anonymous groups are mostly small
        // (size ~k), and for them the early-exit branch mispredicts more
        // than it saves. Scan the whole group with straight-line
        // stamp/count stores and compare once at the end — the stamp
        // store is unconditional, so re-stamping a seen code is a no-op.
        uint32_t* stamp = scratch->stamp_.data();
        for (uint32_t idx = begin; idx < end; ++idx) {
          uint32_t code = codes[scratch->rows_[idx]];
          distinct += stamp[code] != gen;
          stamp[code] = gen;
        }
        if (distinct < p) return false;
      } else {
        bool enough = false;
        for (uint32_t idx = begin; idx < end; ++idx) {
          uint32_t code = codes[scratch->rows_[idx]];
          if (scratch->stamp_[code] != gen) {
            scratch->stamp_[code] = gen;
            if (++distinct >= p) {
              enough = true;
              break;
            }
          }
        }
        if (!enough) return false;
      }
    }
  }
  return true;
}

Result<bool> IsPSensitive(const Table& table,
                          const std::vector<size_t>& key_indices,
                          const std::vector<size_t>& confidential_indices,
                          size_t p) {
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      if (col >= table.num_columns()) {
        return Status::OutOfRange("confidential column index out of range");
      }
      if (DistinctInGroup(table, group, col, p) < p) return false;
    }
  }
  return true;
}

Result<CheckOutcome> CheckBasic(const Table& table,
                                const std::vector<size_t>& key_indices,
                                const std::vector<size_t>& confidential_indices,
                                size_t p, size_t k) {
  PSK_RETURN_IF_ERROR(ValidatePK(p, k));
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  CheckOutcome outcome;
  if (fs.num_groups() > 0 && fs.MinGroupSize() < k) {
    outcome.stage = CheckStage::kKAnonymity;
    return outcome;
  }
  return DetailedCheck(table, fs, confidential_indices, p, outcome);
}

Result<CheckOutcome> CheckImproved(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices, size_t p, size_t k,
    const std::optional<ConditionBounds>& bounds) {
  PSK_RETURN_IF_ERROR(ValidatePK(p, k));
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }

  size_t max_p;
  uint64_t max_groups;
  if (bounds.has_value()) {
    // Theorems 1-2: bounds computed on the initial microdata dominate the
    // bounds of any generalized+suppressed MM, so they are safe here.
    max_p = bounds->max_p;
    max_groups = bounds->max_groups;
  } else {
    PSK_ASSIGN_OR_RETURN(FrequencyStats stats,
                         FrequencyStats::Compute(table, confidential_indices));
    max_p = stats.MaxP();
    if (p >= 2 && p <= max_p) {
      PSK_ASSIGN_OR_RETURN(max_groups, stats.MaxGroups(p));
    } else {
      max_groups = 0;  // unused when Condition 1 fails or p == 1
    }
  }

  CheckOutcome outcome;
  // First necessary condition.
  if (p > max_p) {
    outcome.stage = CheckStage::kCondition1;
    return outcome;
  }

  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));

  // Second necessary condition (defined for p >= 2).
  if (p >= 2 && static_cast<uint64_t>(fs.num_groups()) > max_groups) {
    outcome.stage = CheckStage::kCondition2;
    return outcome;
  }

  if (fs.num_groups() > 0 && fs.MinGroupSize() < k) {
    outcome.stage = CheckStage::kKAnonymity;
    return outcome;
  }
  return DetailedCheck(table, fs, confidential_indices, p, outcome);
}

Result<CheckOutcome> CheckBasic(const Table& table, size_t p, size_t k) {
  return CheckBasic(table, table.schema().KeyIndices(),
                    table.schema().ConfidentialIndices(), p, k);
}

Result<CheckOutcome> CheckImproved(const Table& table, size_t p, size_t k) {
  return CheckImproved(table, table.schema().KeyIndices(),
                       table.schema().ConfidentialIndices(), p, k);
}

Result<size_t> SensitivityP(const Table& table,
                            const std::vector<size_t>& key_indices,
                            const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return static_cast<size_t>(0);
  size_t min_distinct = SIZE_MAX;
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      if (col >= table.num_columns()) {
        return Status::OutOfRange("confidential column index out of range");
      }
      min_distinct =
          std::min(min_distinct, DistinctInGroup(table, group, col, SIZE_MAX));
    }
  }
  return min_distinct;
}

namespace {

// Distinct categories (ancestors at `level`) of column `col` within one
// group, counting at most `cap`.
Result<size_t> DistinctCategoriesInGroup(
    const Table& table, const Group& group, size_t col,
    const AttributeHierarchy& value_hierarchy, int level, size_t cap) {
  std::unordered_set<Value, ValueHash> seen;
  std::unordered_map<Value, Value, ValueHash> memo;
  for (size_t row : group.row_indices) {
    const Value& ground = table.Get(row, col);
    auto it = memo.find(ground);
    if (it == memo.end()) {
      PSK_ASSIGN_OR_RETURN(Value category,
                           value_hierarchy.Generalize(ground, level));
      it = memo.emplace(ground, std::move(category)).first;
    }
    seen.insert(it->second);
    if (seen.size() >= cap) return seen.size();
  }
  return seen.size();
}

}  // namespace

Result<bool> IsPSensitiveHierarchical(
    const Table& table, const std::vector<size_t>& key_indices,
    size_t confidential_col, const AttributeHierarchy& value_hierarchy,
    int level, size_t p) {
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  if (confidential_col >= table.num_columns()) {
    return Status::OutOfRange("confidential column index out of range");
  }
  if (level < 0 || level >= value_hierarchy.num_levels()) {
    return Status::OutOfRange("hierarchy level out of range");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  for (const Group& group : fs.groups()) {
    PSK_ASSIGN_OR_RETURN(
        size_t distinct,
        DistinctCategoriesInGroup(table, group, confidential_col,
                                  value_hierarchy, level, p));
    if (distinct < p) return false;
  }
  return true;
}

Result<size_t> HierarchicalSensitivityP(
    const Table& table, const std::vector<size_t>& key_indices,
    size_t confidential_col, const AttributeHierarchy& value_hierarchy,
    int level) {
  if (confidential_col >= table.num_columns()) {
    return Status::OutOfRange("confidential column index out of range");
  }
  if (level < 0 || level >= value_hierarchy.num_levels()) {
    return Status::OutOfRange("hierarchy level out of range");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return static_cast<size_t>(0);
  size_t min_distinct = SIZE_MAX;
  for (const Group& group : fs.groups()) {
    PSK_ASSIGN_OR_RETURN(
        size_t distinct,
        DistinctCategoriesInGroup(table, group, confidential_col,
                                  value_hierarchy, level, SIZE_MAX));
    min_distinct = std::min(min_distinct, distinct);
  }
  return min_distinct;
}

Result<size_t> CountAttributeDisclosures(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  size_t disclosures = 0;
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      if (col >= table.num_columns()) {
        return Status::OutOfRange("confidential column index out of range");
      }
      if (DistinctInGroup(table, group, col, 2) == 1) {
        ++disclosures;
      }
    }
  }
  return disclosures;
}

}  // namespace psk
