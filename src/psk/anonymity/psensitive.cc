#include "psk/anonymity/psensitive.h"

#include <unordered_set>

#include "psk/hierarchy/hierarchy.h"
#include "psk/table/group_by.h"

namespace psk {
namespace {

// Distinct values of column `col` among the rows of `group`, counting at
// most `cap` (early exit once the check is decided).
size_t DistinctInGroup(const Table& table, const Group& group, size_t col,
                       size_t cap) {
  std::unordered_set<Value, ValueHash> seen;
  for (size_t row : group.row_indices) {
    seen.insert(table.Get(row, col));
    if (seen.size() >= cap) return seen.size();
  }
  return seen.size();
}

Status ValidatePK(size_t p, size_t k) {
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (p > k) {
    return Status::InvalidArgument(
        "p must be <= k (a group of k tuples holds at most k distinct "
        "values); got p = " +
        std::to_string(p) + ", k = " + std::to_string(k));
  }
  return Status::OK();
}

// The detailed per-group check shared by Algorithms 1 and 2.
Result<CheckOutcome> DetailedCheck(const Table& table, const FrequencySet& fs,
                                   const std::vector<size_t>& conf_indices,
                                   size_t p, CheckOutcome outcome) {
  for (const Group& group : fs.groups()) {
    ++outcome.groups_examined;
    for (size_t col : conf_indices) {
      if (DistinctInGroup(table, group, col, p) < p) {
        outcome.satisfied = false;
        outcome.stage = CheckStage::kGroupDetail;
        return outcome;
      }
    }
  }
  outcome.satisfied = true;
  outcome.stage = CheckStage::kPassed;
  return outcome;
}

}  // namespace

Result<bool> IsPSensitive(const Table& table,
                          const std::vector<size_t>& key_indices,
                          const std::vector<size_t>& confidential_indices,
                          size_t p) {
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      if (col >= table.num_columns()) {
        return Status::OutOfRange("confidential column index out of range");
      }
      if (DistinctInGroup(table, group, col, p) < p) return false;
    }
  }
  return true;
}

Result<CheckOutcome> CheckBasic(const Table& table,
                                const std::vector<size_t>& key_indices,
                                const std::vector<size_t>& confidential_indices,
                                size_t p, size_t k) {
  PSK_RETURN_IF_ERROR(ValidatePK(p, k));
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  CheckOutcome outcome;
  if (fs.num_groups() > 0 && fs.MinGroupSize() < k) {
    outcome.stage = CheckStage::kKAnonymity;
    return outcome;
  }
  return DetailedCheck(table, fs, confidential_indices, p, outcome);
}

Result<CheckOutcome> CheckImproved(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices, size_t p, size_t k,
    const std::optional<ConditionBounds>& bounds) {
  PSK_RETURN_IF_ERROR(ValidatePK(p, k));
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }

  size_t max_p;
  uint64_t max_groups;
  if (bounds.has_value()) {
    // Theorems 1-2: bounds computed on the initial microdata dominate the
    // bounds of any generalized+suppressed MM, so they are safe here.
    max_p = bounds->max_p;
    max_groups = bounds->max_groups;
  } else {
    PSK_ASSIGN_OR_RETURN(FrequencyStats stats,
                         FrequencyStats::Compute(table, confidential_indices));
    max_p = stats.MaxP();
    if (p >= 2 && p <= max_p) {
      PSK_ASSIGN_OR_RETURN(max_groups, stats.MaxGroups(p));
    } else {
      max_groups = 0;  // unused when Condition 1 fails or p == 1
    }
  }

  CheckOutcome outcome;
  // First necessary condition.
  if (p > max_p) {
    outcome.stage = CheckStage::kCondition1;
    return outcome;
  }

  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));

  // Second necessary condition (defined for p >= 2).
  if (p >= 2 && static_cast<uint64_t>(fs.num_groups()) > max_groups) {
    outcome.stage = CheckStage::kCondition2;
    return outcome;
  }

  if (fs.num_groups() > 0 && fs.MinGroupSize() < k) {
    outcome.stage = CheckStage::kKAnonymity;
    return outcome;
  }
  return DetailedCheck(table, fs, confidential_indices, p, outcome);
}

Result<CheckOutcome> CheckBasic(const Table& table, size_t p, size_t k) {
  return CheckBasic(table, table.schema().KeyIndices(),
                    table.schema().ConfidentialIndices(), p, k);
}

Result<CheckOutcome> CheckImproved(const Table& table, size_t p, size_t k) {
  return CheckImproved(table, table.schema().KeyIndices(),
                       table.schema().ConfidentialIndices(), p, k);
}

Result<size_t> SensitivityP(const Table& table,
                            const std::vector<size_t>& key_indices,
                            const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return static_cast<size_t>(0);
  size_t min_distinct = SIZE_MAX;
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      if (col >= table.num_columns()) {
        return Status::OutOfRange("confidential column index out of range");
      }
      min_distinct =
          std::min(min_distinct, DistinctInGroup(table, group, col, SIZE_MAX));
    }
  }
  return min_distinct;
}

namespace {

// Distinct categories (ancestors at `level`) of column `col` within one
// group, counting at most `cap`.
Result<size_t> DistinctCategoriesInGroup(
    const Table& table, const Group& group, size_t col,
    const AttributeHierarchy& value_hierarchy, int level, size_t cap) {
  std::unordered_set<Value, ValueHash> seen;
  std::unordered_map<Value, Value, ValueHash> memo;
  for (size_t row : group.row_indices) {
    const Value& ground = table.Get(row, col);
    auto it = memo.find(ground);
    if (it == memo.end()) {
      PSK_ASSIGN_OR_RETURN(Value category,
                           value_hierarchy.Generalize(ground, level));
      it = memo.emplace(ground, std::move(category)).first;
    }
    seen.insert(it->second);
    if (seen.size() >= cap) return seen.size();
  }
  return seen.size();
}

}  // namespace

Result<bool> IsPSensitiveHierarchical(
    const Table& table, const std::vector<size_t>& key_indices,
    size_t confidential_col, const AttributeHierarchy& value_hierarchy,
    int level, size_t p) {
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  if (confidential_col >= table.num_columns()) {
    return Status::OutOfRange("confidential column index out of range");
  }
  if (level < 0 || level >= value_hierarchy.num_levels()) {
    return Status::OutOfRange("hierarchy level out of range");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  for (const Group& group : fs.groups()) {
    PSK_ASSIGN_OR_RETURN(
        size_t distinct,
        DistinctCategoriesInGroup(table, group, confidential_col,
                                  value_hierarchy, level, p));
    if (distinct < p) return false;
  }
  return true;
}

Result<size_t> HierarchicalSensitivityP(
    const Table& table, const std::vector<size_t>& key_indices,
    size_t confidential_col, const AttributeHierarchy& value_hierarchy,
    int level) {
  if (confidential_col >= table.num_columns()) {
    return Status::OutOfRange("confidential column index out of range");
  }
  if (level < 0 || level >= value_hierarchy.num_levels()) {
    return Status::OutOfRange("hierarchy level out of range");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  if (fs.num_groups() == 0) return static_cast<size_t>(0);
  size_t min_distinct = SIZE_MAX;
  for (const Group& group : fs.groups()) {
    PSK_ASSIGN_OR_RETURN(
        size_t distinct,
        DistinctCategoriesInGroup(table, group, confidential_col,
                                  value_hierarchy, level, SIZE_MAX));
    min_distinct = std::min(min_distinct, distinct);
  }
  return min_distinct;
}

Result<size_t> CountAttributeDisclosures(
    const Table& table, const std::vector<size_t>& key_indices,
    const std::vector<size_t>& confidential_indices) {
  if (confidential_indices.empty()) {
    return Status::InvalidArgument(
        "at least one confidential attribute is required");
  }
  PSK_ASSIGN_OR_RETURN(FrequencySet fs,
                       FrequencySet::Compute(table, key_indices));
  size_t disclosures = 0;
  for (const Group& group : fs.groups()) {
    for (size_t col : confidential_indices) {
      if (col >= table.num_columns()) {
        return Status::OutOfRange("confidential column index out of range");
      }
      if (DistinctInGroup(table, group, col, 2) == 1) {
        ++disclosures;
      }
    }
  }
  return disclosures;
}

}  // namespace psk
