#ifndef PSK_ANONYMITY_FREQUENCY_STATS_H_
#define PSK_ANONYMITY_FREQUENCY_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/table/encoded.h"
#include "psk/table/table.h"

namespace psk {

/// The confidential-attribute frequency statistics of §3 (Tables 5-6) that
/// power the paper's two necessary conditions:
///
///  - n: number of tuples;
///  - s_j: number of distinct values of confidential attribute S_j;
///  - f_i^j: descending ordered frequency set of S_j (i = 1..s_j);
///  - cf_i^j: cumulative descending frequencies of S_j;
///  - cf_i = max_j cf_i^j for i = 1..min_j(s_j).
///
/// Indices in this API are 0-based: f(j, i) is the paper's f_{i+1}^{j+1}.
class FrequencyStats {
 public:
  /// Computes the statistics over the given confidential columns. Fails if
  /// `confidential_indices` is empty or out of range.
  static Result<FrequencyStats> Compute(
      const Table& table, const std::vector<size_t>& confidential_indices);

  /// Convenience overload using the schema's confidential attributes.
  static Result<FrequencyStats> Compute(const Table& table);

  /// Code-path overload: frequencies counted over the dictionary codes of
  /// the encoded confidential columns (a counting array instead of a
  /// Value-keyed hash map). Codes deduplicate by Value equality, so the
  /// resulting statistics — and the Condition 1/2 bounds derived from
  /// them — are identical to the Value-path overloads.
  static Result<FrequencyStats> Compute(const EncodedTable& encoded);

  /// Number of tuples (the paper's n).
  size_t n() const { return n_; }

  /// Number of confidential attributes (the paper's q).
  size_t q() const { return freq_.size(); }

  /// Distinct-value count of confidential attribute j (the paper's s_j).
  size_t s(size_t j) const { return freq_[j].size(); }

  /// Descending frequency f_{i+1}^{j+1} (0-based i < s(j)).
  size_t f(size_t j, size_t i) const { return freq_[j][i]; }

  /// Cumulative descending frequency cf_{i+1}^{j+1} (0-based i < s(j)).
  size_t cf(size_t j, size_t i) const { return cum_freq_[j][i]; }

  /// cf_{i+1} = max_j cf_{i+1}^j, defined for 0-based i < MaxP().
  size_t cf_max(size_t i) const { return cf_max_[i]; }

  /// Condition 1 bound: maxP = min_j s_j. p-sensitive k-anonymity is
  /// impossible for any p > MaxP() (First necessary condition).
  size_t MaxP() const;

  /// Condition 2 bound: the maximum number of QI-groups a masked microdata
  /// can have while being p-sensitive:
  ///
  ///   maxGroups(p) = min_{i=1..p-1} floor((n - cf_{p-i}) / i).
  ///
  /// Requires 2 <= p <= MaxP() (otherwise InvalidArgument /
  /// FailedPrecondition).
  Result<uint64_t> MaxGroups(size_t p) const;

  /// Debug rendering of the f / cf tables (mirrors Tables 5-6).
  std::string ToString() const;

 private:
  size_t n_ = 0;
  std::vector<std::vector<size_t>> freq_;      // [j][i] descending
  std::vector<std::vector<size_t>> cum_freq_;  // [j][i]
  std::vector<size_t> cf_max_;                 // [i], i < MaxP()
};

}  // namespace psk

#endif  // PSK_ANONYMITY_FREQUENCY_STATS_H_
