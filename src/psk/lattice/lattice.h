#ifndef PSK_LATTICE_LATTICE_H_
#define PSK_LATTICE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"

namespace psk {

/// One node of the generalization lattice: the domain level chosen for each
/// key attribute, in key-attribute order. E.g. with attributes (Sex,
/// ZipCode), the node <S1, Z0> is {1, 0}.
struct LatticeNode {
  std::vector<int> levels;

  /// Sum of levels — the paper's height(X, GL) (minimum path length from
  /// the lattice bottom).
  int Height() const {
    int h = 0;
    for (int level : levels) h += level;
    return h;
  }

  /// "<A1, M0, R2, S1>" using each hierarchy's level names.
  std::string ToString(const HierarchySet& hierarchies) const;
  /// "<1, 0, 2, 1>" without attribute context.
  std::string ToString() const;

  friend bool operator==(const LatticeNode& a, const LatticeNode& b) {
    return a.levels == b.levels;
  }
  friend bool operator!=(const LatticeNode& a, const LatticeNode& b) {
    return !(a == b);
  }
  /// Lexicographic order, for deterministic sorted output.
  friend bool operator<(const LatticeNode& a, const LatticeNode& b) {
    return a.levels < b.levels;
  }
};

struct LatticeNodeHash {
  size_t operator()(const LatticeNode& node) const {
    size_t h = 0x345678;
    for (int level : node.levels) {
      h = h * 1000003 + static_cast<size_t>(level + 1);
    }
    return h;
  }
};

/// The full-domain generalization lattice GL over a set of key-attribute
/// hierarchies (Samarati 2001; Fig. 2 of the paper): the product of the
/// per-attribute domain chains, ordered componentwise. The bottom
/// <0, ..., 0> is the original data; the top is every attribute at its most
/// generalized domain.
class GeneralizationLattice {
 public:
  /// Builds the lattice for the given hierarchy set.
  explicit GeneralizationLattice(const HierarchySet& hierarchies)
      : max_levels_(hierarchies.MaxLevels()) {}

  /// Builds a lattice directly from per-attribute maximum levels (testing /
  /// simulation convenience).
  explicit GeneralizationLattice(std::vector<int> max_levels)
      : max_levels_(std::move(max_levels)) {}

  size_t num_attributes() const { return max_levels_.size(); }
  const std::vector<int>& max_levels() const { return max_levels_; }

  LatticeNode Bottom() const {
    return LatticeNode{std::vector<int>(max_levels_.size(), 0)};
  }
  LatticeNode Top() const { return LatticeNode{max_levels_}; }

  /// height(GL): the height of the top node.
  int height() const { return Top().Height(); }

  /// Total number of nodes: prod(max_level_i + 1).
  uint64_t NumNodes() const;

  /// True iff `node` has the right arity and every level is within range.
  bool Contains(const LatticeNode& node) const;

  /// All nodes X with height(X) == h, in lexicographic order. Empty when h
  /// is out of [0, height()].
  std::vector<LatticeNode> NodesAtHeight(int h) const;

  /// Every node, in height-major (then lexicographic) order.
  std::vector<LatticeNode> AllNodes() const;

  /// Direct successors: nodes reachable by incrementing exactly one
  /// attribute's level.
  std::vector<LatticeNode> Successors(const LatticeNode& node) const;

  /// Direct predecessors: nodes reachable by decrementing exactly one
  /// attribute's level.
  std::vector<LatticeNode> Predecessors(const LatticeNode& node) const;

  /// True iff `a` is a generalization of `b` (a >= b componentwise), i.e.
  /// `a` lies on some upward path from `b`. Every node generalizes itself.
  static bool IsGeneralizationOf(const LatticeNode& a, const LatticeNode& b);

 private:
  void EnumerateAtHeight(int h, size_t attr, LatticeNode* partial,
                         std::vector<LatticeNode>* out) const;

  std::vector<int> max_levels_;
};

/// Reduces a set of satisfying nodes to the minimal ones: nodes X such that
/// no other node Y in `nodes` satisfies Y < X componentwise (Definition 3's
/// p-k-minimal generalizations, given `nodes` = all satisfying nodes).
std::vector<LatticeNode> MinimalNodes(std::vector<LatticeNode> nodes);

}  // namespace psk

#endif  // PSK_LATTICE_LATTICE_H_
