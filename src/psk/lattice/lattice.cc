#include "psk/lattice/lattice.h"

#include <algorithm>

#include "psk/common/check.h"

namespace psk {

std::string LatticeNode::ToString(const HierarchySet& hierarchies) const {
  PSK_CHECK(levels.size() == hierarchies.size());
  std::string out = "<";
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ", ";
    out += hierarchies.hierarchy(i).LevelName(levels[i]);
  }
  out += ">";
  return out;
}

std::string LatticeNode::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(levels[i]);
  }
  out += ">";
  return out;
}

uint64_t GeneralizationLattice::NumNodes() const {
  uint64_t count = 1;
  for (int max : max_levels_) {
    count *= static_cast<uint64_t>(max) + 1;
  }
  return count;
}

bool GeneralizationLattice::Contains(const LatticeNode& node) const {
  if (node.levels.size() != max_levels_.size()) return false;
  for (size_t i = 0; i < max_levels_.size(); ++i) {
    if (node.levels[i] < 0 || node.levels[i] > max_levels_[i]) return false;
  }
  return true;
}

void GeneralizationLattice::EnumerateAtHeight(
    int h, size_t attr, LatticeNode* partial,
    std::vector<LatticeNode>* out) const {
  if (attr == max_levels_.size()) {
    if (h == 0) out->push_back(*partial);
    return;
  }
  // Prune: the remaining attributes can absorb at most `remaining_max`.
  int remaining_max = 0;
  for (size_t i = attr + 1; i < max_levels_.size(); ++i) {
    remaining_max += max_levels_[i];
  }
  for (int level = 0; level <= max_levels_[attr]; ++level) {
    if (level > h) break;
    if (h - level > remaining_max) continue;
    partial->levels[attr] = level;
    EnumerateAtHeight(h - level, attr + 1, partial, out);
  }
  partial->levels[attr] = 0;
}

std::vector<LatticeNode> GeneralizationLattice::NodesAtHeight(int h) const {
  std::vector<LatticeNode> out;
  if (h < 0 || h > height()) return out;
  LatticeNode partial = Bottom();
  EnumerateAtHeight(h, 0, &partial, &out);
  return out;
}

std::vector<LatticeNode> GeneralizationLattice::AllNodes() const {
  std::vector<LatticeNode> out;
  out.reserve(NumNodes());
  for (int h = 0; h <= height(); ++h) {
    std::vector<LatticeNode> at_height = NodesAtHeight(h);
    out.insert(out.end(), at_height.begin(), at_height.end());
  }
  return out;
}

std::vector<LatticeNode> GeneralizationLattice::Successors(
    const LatticeNode& node) const {
  PSK_CHECK(Contains(node));
  std::vector<LatticeNode> out;
  for (size_t i = 0; i < max_levels_.size(); ++i) {
    if (node.levels[i] < max_levels_[i]) {
      LatticeNode next = node;
      ++next.levels[i];
      out.push_back(std::move(next));
    }
  }
  return out;
}

std::vector<LatticeNode> GeneralizationLattice::Predecessors(
    const LatticeNode& node) const {
  PSK_CHECK(Contains(node));
  std::vector<LatticeNode> out;
  for (size_t i = 0; i < max_levels_.size(); ++i) {
    if (node.levels[i] > 0) {
      LatticeNode prev = node;
      --prev.levels[i];
      out.push_back(std::move(prev));
    }
  }
  return out;
}

bool GeneralizationLattice::IsGeneralizationOf(const LatticeNode& a,
                                               const LatticeNode& b) {
  if (a.levels.size() != b.levels.size()) return false;
  for (size_t i = 0; i < a.levels.size(); ++i) {
    if (a.levels[i] < b.levels[i]) return false;
  }
  return true;
}

std::vector<LatticeNode> MinimalNodes(std::vector<LatticeNode> nodes) {
  std::vector<LatticeNode> minimal;
  for (const LatticeNode& candidate : nodes) {
    bool dominated = false;
    for (const LatticeNode& other : nodes) {
      if (other != candidate &&
          GeneralizationLattice::IsGeneralizationOf(candidate, other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(candidate);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace psk
