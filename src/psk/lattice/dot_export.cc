#include "psk/lattice/dot_export.h"

#include <map>
#include <set>
#include <sstream>

namespace psk {
namespace {

// Dot string literal with quotes/backslashes escaped.
std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

// Unique dot node id for a (level, label) pair.
std::string NodeId(int level, const std::string& label) {
  std::string id = "L" + std::to_string(level) + "_";
  for (char c : label) {
    id += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return id;
}

}  // namespace

Result<std::string> HierarchyToDot(const AttributeHierarchy& hierarchy,
                                   const std::vector<Value>& ground_values) {
  std::ostringstream os;
  os << "digraph vgh {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n"
     << "  label=" << Quote(hierarchy.attribute_name()) << ";\n";

  // Collect nodes per level and parent edges, deduplicated.
  std::map<int, std::set<std::string>> levels;
  std::set<std::pair<std::string, std::string>> edges;
  for (const Value& ground : ground_values) {
    std::string previous;
    for (int level = 0; level < hierarchy.num_levels(); ++level) {
      PSK_ASSIGN_OR_RETURN(Value v, hierarchy.Generalize(ground, level));
      std::string label = v.ToString();
      levels[level].insert(label);
      if (level > 0) {
        edges.emplace(NodeId(level - 1, previous), NodeId(level, label));
      }
      previous = std::move(label);
    }
  }
  for (const auto& [level, labels] : levels) {
    os << "  { rank=same;";
    for (const std::string& label : labels) {
      os << " " << NodeId(level, label) << " [label=" << Quote(label)
         << "];";
    }
    os << " }\n";
  }
  for (const auto& [from, to] : edges) {
    os << "  " << from << " -> " << to << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string LatticeToDot(const GeneralizationLattice& lattice,
                         const HierarchySet& hierarchies,
                         const std::vector<LatticeNode>& highlight) {
  std::ostringstream os;
  os << "digraph lattice {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=ellipse, fontname=\"Helvetica\"];\n";
  auto id = [](const LatticeNode& node) {
    std::string out = "n";
    for (int level : node.levels) out += "_" + std::to_string(level);
    return out;
  };
  auto highlighted = [&](const LatticeNode& node) {
    for (const LatticeNode& h : highlight) {
      if (h == node) return true;
    }
    return false;
  };
  for (int h = 0; h <= lattice.height(); ++h) {
    std::vector<LatticeNode> nodes = lattice.NodesAtHeight(h);
    if (nodes.empty()) continue;
    os << "  { rank=same;";
    for (const LatticeNode& node : nodes) {
      os << " " << id(node) << " [label="
         << Quote(node.ToString(hierarchies));
      if (highlighted(node)) os << ", style=filled, fillcolor=lightblue";
      os << "];";
    }
    os << " }\n";
  }
  for (const LatticeNode& node : lattice.AllNodes()) {
    for (const LatticeNode& succ : lattice.Successors(node)) {
      os << "  " << id(node) << " -> " << id(succ) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace psk
