#ifndef PSK_LATTICE_DOT_EXPORT_H_
#define PSK_LATTICE_DOT_EXPORT_H_

#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/lattice/lattice.h"

namespace psk {

/// Graphviz (dot) renderers for the paper's two kinds of diagrams. Pipe
/// the output through `dot -Tpng` (or paste into any Graphviz viewer) to
/// regenerate Fig. 1 (value generalization hierarchies) and Fig. 2
/// (generalization lattices) for your own configuration.

/// Renders the value generalization hierarchy of `hierarchy` over the
/// given ground values as a tree, leaves at the bottom (Fig. 1). Fails if
/// some ground value cannot be generalized.
Result<std::string> HierarchyToDot(const AttributeHierarchy& hierarchy,
                                   const std::vector<Value>& ground_values);

/// Renders the full generalization lattice with one rank per height and an
/// edge for every direct generalization step (Fig. 2). Nodes listed in
/// `highlight` (e.g. the minimal generalizations a search returned) are
/// drawn filled.
std::string LatticeToDot(const GeneralizationLattice& lattice,
                         const HierarchySet& hierarchies,
                         const std::vector<LatticeNode>& highlight = {});

}  // namespace psk

#endif  // PSK_LATTICE_DOT_EXPORT_H_
