#ifndef PSK_API_ANONYMIZER_H_
#define PSK_API_ANONYMIZER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "psk/algorithms/search_common.h"
#include "psk/common/result.h"
#include "psk/common/run_budget.h"
#include "psk/guard/guard.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// Which engine produces the masked microdata.
enum class AnonymizationAlgorithm {
  /// Samarati binary search / the paper's Algorithm 3 (one minimal-height
  /// solution; the default).
  kSamarati = 0,
  /// Incognito-style subset-lattice search; picks the minimal node with
  /// the best precision among all p-k-minimal generalizations.
  kIncognito = 1,
  /// Full-lattice bottom-up BFS; same selection rule as Incognito.
  kBottomUp = 2,
  /// Exhaustive sweep (exact, exponential in the QI count).
  kExhaustive = 3,
  /// Mondrian multidimensional local recoding (no hierarchies required).
  kMondrian = 4,
  /// Greedy p-sensitive k-anonymous clustering (local recoding, no
  /// hierarchies required).
  kGreedyCluster = 5,
  /// OLA: optimal lattice anonymization — among all minimal nodes, picks
  /// the one minimizing the discernibility metric.
  kOla = 6,
  /// Last-resort degradation: generalize every key attribute to the top of
  /// its hierarchy (one QI-group holding the whole table). Maximally
  /// private, minimally useful, and O(n) — it ignores the run budget, so a
  /// fallback chain ending here always produces *some* release.
  kFullSuppression = 7,
};

/// The outcome of one anonymization run: the masked microdata plus the
/// privacy/utility scorecard a data owner reviews before release.
struct AnonymizationReport {
  Table masked;
  /// The lattice node applied (absent for Mondrian's local recoding).
  std::optional<LatticeNode> node;
  size_t suppressed = 0;

  // Privacy scorecard.
  size_t achieved_k = 0;  ///< smallest QI-group size
  size_t achieved_p = 0;  ///< minimum distinct confidential values/group
  size_t attribute_disclosures = 0;
  double reidentification_risk = 0.0;  ///< marketer-model risk

  // Utility scorecard.
  uint64_t discernibility = 0;
  double normalized_avg_group_size = 0.0;
  /// Precision of the applied node; 1.0 (no loss) reported for Mondrian,
  /// whose loss shows up in discernibility instead.
  double precision = 1.0;

  SearchStats stats;

  // Provenance: how the release was produced.
  /// The algorithm that actually produced the release (differs from the
  /// configured one when a fallback stage took over).
  AnonymizationAlgorithm algorithm_used = AnonymizationAlgorithm::kSamarati;
  /// Index into the chain {primary, fallbacks...}: 0 = the configured
  /// algorithm, 1 = first fallback, and so on.
  size_t fallback_stage = 0;
  /// True when the producing stage stopped on an exhausted budget and
  /// released its best-so-far answer (stats.stop_reason says why).
  bool partial = false;
  /// The release guard's independent measurements (populated unless the
  /// guard was disabled).
  GuardReport guard;
};

/// One-stop API over the whole library: configure the dataset, the
/// hierarchies and the privacy requirements, call Run(), and get the
/// masked microdata with its scorecard.
///
///   Anonymizer anonymizer(std::move(table));
///   anonymizer.AddHierarchy(age_hierarchy);
///   anonymizer.AddHierarchy(zip_hierarchy);
///   anonymizer.set_k(3).set_p(2).set_max_suppression(10);
///   PSK_ASSIGN_OR_RETURN(AnonymizationReport report, anonymizer.Run());
///
/// The schema drives everything: attributes marked kIdentifier are
/// dropped, kKey attributes are generalized (each needs a hierarchy unless
/// the algorithm is Mondrian), kConfidential attributes feed the
/// p-sensitivity requirement.
class Anonymizer {
 public:
  explicit Anonymizer(Table initial_microdata)
      : initial_microdata_(std::move(initial_microdata)) {}

  /// Streaming-ingest construction: starts from an empty table over
  /// `schema` and grows it with Ingest() chunks. Call set_budget first if
  /// the ingest should be metered — each Ingest charges the table's
  /// footprint against the budget's MemoryBudget as it grows.
  explicit Anonymizer(Schema schema) : initial_microdata_(std::move(schema)) {}

  /// Capacity hint forwarded to the input table ahead of a chunked ingest
  /// loop (avoids id-column reallocation churn).
  Anonymizer& ReserveRows(size_t additional_rows) {
    initial_microdata_.ReserveRows(additional_rows);
    return *this;
  }

  /// Appends one columnar chunk to the input table (see
  /// Table::AppendChunk for the validation contract; the chunk's buffers
  /// survive for refill). When the run budget carries a MemoryBudget, the
  /// input table's current footprint is (re)charged against it, so a
  /// scheduler sees ingest memory the same way it sees cache and encode
  /// memory — and an over-quota ingest fails here with kResourceExhausted
  /// instead of at Run.
  Status Ingest(IngestChunk* chunk) {
    PSK_RETURN_IF_ERROR(initial_microdata_.AppendChunk(chunk));
    return ChargeInputFootprint();
  }

  /// Rows ingested so far (== num_rows of the table handed to Run).
  size_t num_ingested_rows() const { return initial_microdata_.num_rows(); }

  /// Registers the hierarchy for one key attribute (any order; matched to
  /// schema attributes by name at Run time).
  Anonymizer& AddHierarchy(
      std::shared_ptr<const AttributeHierarchy> hierarchy) {
    hierarchies_.push_back(std::move(hierarchy));
    return *this;
  }

  Anonymizer& set_k(size_t k) {
    k_ = k;
    return *this;
  }
  Anonymizer& set_p(size_t p) {
    p_ = p;
    return *this;
  }
  Anonymizer& set_max_suppression(size_t max_suppression) {
    max_suppression_ = max_suppression;
    return *this;
  }
  Anonymizer& set_algorithm(AnonymizationAlgorithm algorithm) {
    algorithm_ = algorithm;
    return *this;
  }
  /// Disables the Condition 1/2 pruning (for measurement only).
  Anonymizer& set_use_conditions(bool use_conditions) {
    use_conditions_ = use_conditions;
    return *this;
  }
  /// Disables the dictionary-encoded evaluation core, forcing the lattice
  /// engines onto the legacy Value pipeline (see
  /// SearchOptions::use_encoded_core). Results are identical either way;
  /// this switch exists for benchmarking and as an escape hatch.
  Anonymizer& set_use_encoded_core(bool use_encoded_core) {
    use_encoded_core_ = use_encoded_core;
    return *this;
  }
  /// Worker threads for the lattice engines' node sweeps (see
  /// SearchOptions::threads). 1 (the default) runs sequentially; results
  /// and stats are identical for every value.
  Anonymizer& set_threads(size_t threads) {
    threads_ = threads;
    return *this;
  }
  /// Fine-axis threshold for the intra-node row-parallel group-by (see
  /// SearchOptions::min_rows_per_slice). Output is bit-identical at any
  /// value; tests lower it to force slicing on small fixtures.
  Anonymizer& set_min_rows_per_slice(size_t min_rows_per_slice) {
    min_rows_per_slice_ = min_rows_per_slice;
    return *this;
  }
  /// Externally owned verdict cache shared into every lattice stage of
  /// the run (see SearchOptions::verdict_cache). A scheduler uses this to
  /// keep a handle on the job's cache so it can meter bytes_used() and
  /// Shrink() it mid-run; normal callers leave it unset and each search
  /// creates a private one.
  Anonymizer& set_verdict_cache(std::shared_ptr<VerdictCache> cache) {
    verdict_cache_ = std::move(cache);
    return *this;
  }

  /// Enables structured run tracing and writes the trace JSON to `path`
  /// (atomically, on Run exit — whether the run succeeded or not). An
  /// empty path disables the sink. See psk/trace for the span taxonomy and
  /// DESIGN.md for the determinism contract.
  Anonymizer& set_trace_sink(std::string path) {
    trace_sink_path_ = std::move(path);
    return *this;
  }
  /// Enables in-memory tracing without a file sink; read the trace back
  /// via last_trace() after Run.
  Anonymizer& set_trace_enabled(bool enabled) {
    trace_enabled_ = enabled;
    return *this;
  }
  /// The trace recorded by the most recent Run() on this anonymizer, or
  /// null when tracing was disabled. With a trace sink configured the
  /// trace is closed and exported; in-memory-only traces are left open so
  /// the caller may append post-run spans (ToJson / StructureSignature
  /// close on demand).
  std::shared_ptr<RunTrace> last_trace() const { return last_trace_; }

  /// Wall-clock deadline for the whole Run, fallback stages included
  /// (sugar for set_budget with only the deadline set).
  Anonymizer& set_deadline(std::chrono::milliseconds deadline) {
    budget_.deadline = deadline;
    return *this;
  }
  /// Full resource budget (deadline, node and row caps, cancellation) for
  /// the whole Run. Each stage of the fallback chain runs under the time
  /// remaining when it starts; the node/row caps apply per stage.
  Anonymizer& set_budget(RunBudget budget) {
    budget_ = std::move(budget);
    return *this;
  }
  /// Algorithms to try, in order, when the configured one fails to produce
  /// a release (no satisfying node, or budget exhausted empty-handed).
  /// Configuration errors and cancellation abort the chain. A typical
  /// chain degrades from exact search to local recoding to full
  /// suppression:
  ///   anonymizer.set_fallback_chain({
  ///       AnonymizationAlgorithm::kGreedyCluster,
  ///       AnonymizationAlgorithm::kFullSuppression});
  Anonymizer& set_fallback_chain(std::vector<AnonymizationAlgorithm> chain) {
    fallback_chain_ = std::move(chain);
    return *this;
  }
  /// The release guard independently re-checks every release before Run
  /// returns it (on by default). Disable only for measurement runs whose
  /// output is never released.
  Anonymizer& set_guard_enabled(bool enabled) {
    guard_enabled_ = enabled;
    return *this;
  }
  /// Overrides the guard policy. By default the guard enforces the
  /// configured k, p and suppression threshold, plus zero attribute
  /// disclosures when p >= 2 (which p-sensitivity implies).
  Anonymizer& set_guard_policy(GuardPolicy policy) {
    guard_policy_ = std::move(policy);
    return *this;
  }
  /// Post-processing hook applied to the masked table after the algorithm
  /// and before the guard — the guard sees (and vets) the transformed
  /// table, so a transform that breaks the privacy properties is refused.
  Anonymizer& set_release_transform(
      std::function<Result<Table>(Table)> transform) {
    release_transform_ = std::move(transform);
    return *this;
  }

  // Crash-safe checkpoint/resume hooks — normally driven by
  // psk/jobs/JobRunner rather than called directly.
  /// Preloads search state recorded by an interrupted run; the lattice
  /// engines fast-forward through it (see SearchOptions::restore). The
  /// snapshot must outlive Run().
  Anonymizer& set_restore_snapshot(const SearchSnapshot* snapshot) {
    restore_snapshot_ = snapshot;
    return *this;
  }
  /// Receives the accumulated search snapshot every `interval` completed
  /// node evaluations and at engine boundaries, for durable persistence.
  Anonymizer& set_checkpoint_sink(
      std::function<void(const SearchSnapshot&)> sink,
      uint64_t interval = 64) {
    checkpoint_sink_ = std::move(sink);
    checkpoint_interval_ = interval;
    return *this;
  }
  /// Progress heartbeat for the local-recoding engines (Mondrian and
  /// GreedyCluster), invoked at partition/cluster boundaries with the
  /// count completed so far. Those engines re-derive their output
  /// deterministically on resume, so the heartbeat carries liveness, not
  /// state.
  Anonymizer& set_progress_heartbeat(std::function<void(size_t)> heartbeat) {
    progress_heartbeat_ = std::move(heartbeat);
    return *this;
  }

  /// Runs the configured algorithm, then each fallback in turn if it
  /// cannot produce a release, then the release guard. Fails with
  /// FailedPrecondition when no stage satisfies the requirements or the
  /// guard refuses the release (the message says which gate failed),
  /// InvalidArgument for inconsistent configuration, or the budget's own
  /// status (DeadlineExceeded / ResourceExhausted / Cancelled) when the
  /// budget ran out before any stage produced a usable result.
  Result<AnonymizationReport> Run() const;

 private:
  /// The Run body; `trace` is null when tracing is disabled. Run() owns
  /// the trace lifecycle (creation, Close, sink export).
  Result<AnonymizationReport> RunImpl(RunTrace* trace) const;

  /// (Re)charges the input table's footprint against the run budget's
  /// MemoryBudget. No-op without one. The reservation lives as long as
  /// this anonymizer, so the table's bytes stay visible to a scheduler's
  /// quota watchdog for the whole job, not just during Run.
  Status ChargeInputFootprint() const {
    if (budget_.memory == nullptr) return Status::OK();
    if (ingest_reservation_.bytes() == 0) {
      return ingest_reservation_.Reserve(budget_.memory,
                                         initial_microdata_.ApproxBytes());
    }
    return ingest_reservation_.Resize(initial_microdata_.ApproxBytes());
  }

  Table initial_microdata_;
  /// Holds the input table's bytes against budget_.memory across the
  /// ingest loop and Run (see ChargeInputFootprint). Makes Anonymizer
  /// move-only, which every current caller already satisfies. Mutable for
  /// the same reason as last_trace_: Run() is const but must be able to
  /// charge the input footprint when the budget arrived after ingest.
  mutable MemoryReservation ingest_reservation_;
  std::vector<std::shared_ptr<const AttributeHierarchy>> hierarchies_;
  size_t k_ = 2;
  size_t p_ = 1;
  size_t max_suppression_ = 0;
  AnonymizationAlgorithm algorithm_ = AnonymizationAlgorithm::kSamarati;
  bool use_conditions_ = true;
  bool use_encoded_core_ = true;
  size_t threads_ = 1;
  size_t min_rows_per_slice_ = 1024;
  std::shared_ptr<VerdictCache> verdict_cache_;
  std::string trace_sink_path_;
  bool trace_enabled_ = false;
  /// Mutable: Run() is const but publishes its trace here for readback.
  mutable std::shared_ptr<RunTrace> last_trace_;
  RunBudget budget_;
  std::vector<AnonymizationAlgorithm> fallback_chain_;
  bool guard_enabled_ = true;
  std::optional<GuardPolicy> guard_policy_;
  std::function<Result<Table>(Table)> release_transform_;
  const SearchSnapshot* restore_snapshot_ = nullptr;
  std::function<void(const SearchSnapshot&)> checkpoint_sink_;
  uint64_t checkpoint_interval_ = 64;
  std::function<void(size_t)> progress_heartbeat_;
};

}  // namespace psk

#endif  // PSK_API_ANONYMIZER_H_
