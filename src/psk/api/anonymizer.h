#ifndef PSK_API_ANONYMIZER_H_
#define PSK_API_ANONYMIZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "psk/algorithms/search_common.h"
#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// Which engine produces the masked microdata.
enum class AnonymizationAlgorithm {
  /// Samarati binary search / the paper's Algorithm 3 (one minimal-height
  /// solution; the default).
  kSamarati = 0,
  /// Incognito-style subset-lattice search; picks the minimal node with
  /// the best precision among all p-k-minimal generalizations.
  kIncognito = 1,
  /// Full-lattice bottom-up BFS; same selection rule as Incognito.
  kBottomUp = 2,
  /// Exhaustive sweep (exact, exponential in the QI count).
  kExhaustive = 3,
  /// Mondrian multidimensional local recoding (no hierarchies required).
  kMondrian = 4,
  /// Greedy p-sensitive k-anonymous clustering (local recoding, no
  /// hierarchies required).
  kGreedyCluster = 5,
  /// OLA: optimal lattice anonymization — among all minimal nodes, picks
  /// the one minimizing the discernibility metric.
  kOla = 6,
};

/// The outcome of one anonymization run: the masked microdata plus the
/// privacy/utility scorecard a data owner reviews before release.
struct AnonymizationReport {
  Table masked;
  /// The lattice node applied (absent for Mondrian's local recoding).
  std::optional<LatticeNode> node;
  size_t suppressed = 0;

  // Privacy scorecard.
  size_t achieved_k = 0;  ///< smallest QI-group size
  size_t achieved_p = 0;  ///< minimum distinct confidential values/group
  size_t attribute_disclosures = 0;
  double reidentification_risk = 0.0;  ///< marketer-model risk

  // Utility scorecard.
  uint64_t discernibility = 0;
  double normalized_avg_group_size = 0.0;
  /// Precision of the applied node; 1.0 (no loss) reported for Mondrian,
  /// whose loss shows up in discernibility instead.
  double precision = 1.0;

  SearchStats stats;
};

/// One-stop API over the whole library: configure the dataset, the
/// hierarchies and the privacy requirements, call Run(), and get the
/// masked microdata with its scorecard.
///
///   Anonymizer anonymizer(std::move(table));
///   anonymizer.AddHierarchy(age_hierarchy);
///   anonymizer.AddHierarchy(zip_hierarchy);
///   anonymizer.set_k(3).set_p(2).set_max_suppression(10);
///   PSK_ASSIGN_OR_RETURN(AnonymizationReport report, anonymizer.Run());
///
/// The schema drives everything: attributes marked kIdentifier are
/// dropped, kKey attributes are generalized (each needs a hierarchy unless
/// the algorithm is Mondrian), kConfidential attributes feed the
/// p-sensitivity requirement.
class Anonymizer {
 public:
  explicit Anonymizer(Table initial_microdata)
      : initial_microdata_(std::move(initial_microdata)) {}

  /// Registers the hierarchy for one key attribute (any order; matched to
  /// schema attributes by name at Run time).
  Anonymizer& AddHierarchy(
      std::shared_ptr<const AttributeHierarchy> hierarchy) {
    hierarchies_.push_back(std::move(hierarchy));
    return *this;
  }

  Anonymizer& set_k(size_t k) {
    k_ = k;
    return *this;
  }
  Anonymizer& set_p(size_t p) {
    p_ = p;
    return *this;
  }
  Anonymizer& set_max_suppression(size_t max_suppression) {
    max_suppression_ = max_suppression;
    return *this;
  }
  Anonymizer& set_algorithm(AnonymizationAlgorithm algorithm) {
    algorithm_ = algorithm;
    return *this;
  }
  /// Disables the Condition 1/2 pruning (for measurement only).
  Anonymizer& set_use_conditions(bool use_conditions) {
    use_conditions_ = use_conditions;
    return *this;
  }

  /// Runs the configured algorithm. Fails with FailedPrecondition when no
  /// masking satisfies the requirements (the message says which gate
  /// failed), or InvalidArgument for inconsistent configuration.
  Result<AnonymizationReport> Run() const;

 private:
  Table initial_microdata_;
  std::vector<std::shared_ptr<const AttributeHierarchy>> hierarchies_;
  size_t k_ = 2;
  size_t p_ = 1;
  size_t max_suppression_ = 0;
  AnonymizationAlgorithm algorithm_ = AnonymizationAlgorithm::kSamarati;
  bool use_conditions_ = true;
};

}  // namespace psk

#endif  // PSK_API_ANONYMIZER_H_
