#include "psk/api/anonymizer.h"

#include <algorithm>
#include <unordered_map>

#include "psk/algorithms/bottom_up.h"
#include "psk/algorithms/exhaustive.h"
#include "psk/algorithms/greedy_cluster.h"
#include "psk/algorithms/incognito.h"
#include "psk/algorithms/mondrian.h"
#include "psk/algorithms/ola.h"
#include "psk/algorithms/samarati.h"
#include "psk/anonymity/kanonymity.h"
#include "psk/anonymity/psensitive.h"
#include "psk/api/spec_parser.h"
#include "psk/common/failpoint.h"
#include "psk/metrics/metrics.h"
#include "psk/metrics/risk.h"

namespace psk {
namespace {

// Scores the masked microdata; shared by every algorithm branch.
Status FillScorecard(const Table& im, AnonymizationReport* report) {
  const Table& masked = report->masked;
  std::vector<size_t> keys = masked.schema().KeyIndices();
  std::vector<size_t> confs = masked.schema().ConfidentialIndices();
  PSK_ASSIGN_OR_RETURN(report->achieved_k, AnonymityK(masked, keys));
  if (!confs.empty()) {
    PSK_ASSIGN_OR_RETURN(report->achieved_p,
                         SensitivityP(masked, keys, confs));
    PSK_ASSIGN_OR_RETURN(report->attribute_disclosures,
                         CountAttributeDisclosures(masked, keys, confs));
  }
  PSK_ASSIGN_OR_RETURN(report->reidentification_risk,
                       MarketerRisk(masked, keys));
  PSK_ASSIGN_OR_RETURN(
      report->discernibility,
      DiscernibilityMetric(masked, keys, report->suppressed, im.num_rows()));
  return Status::OK();
}

// Among a set of minimal nodes, prefer the lowest height, then
// lexicographic order (deterministic).
const LatticeNode* PickNode(const std::vector<LatticeNode>& nodes) {
  const LatticeNode* best = nullptr;
  for (const LatticeNode& node : nodes) {
    if (best == nullptr || node.Height() < best->Height() ||
        (node.Height() == best->Height() && node < *best)) {
      best = &node;
    }
  }
  return best;
}

bool NeedsHierarchies(AnonymizationAlgorithm algorithm) {
  return algorithm != AnonymizationAlgorithm::kMondrian &&
         algorithm != AnonymizationAlgorithm::kGreedyCluster;
}

// A failed stage hands over to the next one only when the failure is about
// this data/budget, not about the configuration: FailedPrecondition (no
// satisfying masking exists for this stage) and the overrunnable budget
// codes continue; cancellation and config errors abort the whole chain.
bool ContinueChain(StatusCode code) {
  return code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

// One fallback stage: runs `algorithm` under `budget` and either returns a
// report (possibly flagged partial, but always holding a masked table that
// satisfied the stage's own checks) or the reason this stage produced
// nothing.
Result<AnonymizationReport> RunStage(
    const Table& im, const HierarchySet* hierarchies,
    AnonymizationAlgorithm algorithm, const SearchOptions& base_options,
    const RunBudget& budget,
    const std::function<void(size_t)>& progress_heartbeat) {
  // Torture seam: an injected continuable error here fails this stage the
  // same way a real data/budget failure would, handing over to the next
  // fallback stage; a non-continuable code aborts the whole chain.
  PSK_FAIL_POINT("api.stage");
  AnonymizationReport report;
  RunTrace* trace = base_options.trace;

  if (algorithm == AnonymizationAlgorithm::kMondrian) {
    MondrianOptions options;
    options.k = base_options.k;
    options.p = base_options.p;
    options.budget = budget;
    options.checkpoint = progress_heartbeat;
    options.trace = trace;
    PSK_ASSIGN_OR_RETURN(MondrianResult mondrian,
                         MondrianAnonymize(im, options));
    if (mondrian.partial &&
        mondrian.stop_reason == StatusCode::kCancelled) {
      return Status::Cancelled("run cancelled by caller");
    }
    report.masked = std::move(mondrian.masked);
    report.partial = mondrian.partial;
    report.stats.partial = mondrian.partial;
    report.stats.stop_reason = mondrian.stop_reason;
    return report;
  }
  if (algorithm == AnonymizationAlgorithm::kGreedyCluster) {
    GreedyClusterOptions options;
    options.k = base_options.k;
    options.p = base_options.p;
    options.budget = budget;
    options.checkpoint = progress_heartbeat;
    options.trace = trace;
    PSK_ASSIGN_OR_RETURN(GreedyClusterResult cluster,
                         GreedyClusterAnonymize(im, options));
    if (cluster.partial &&
        cluster.stop_reason == StatusCode::kCancelled) {
      return Status::Cancelled("run cancelled by caller");
    }
    report.masked = std::move(cluster.masked);
    report.partial = cluster.partial;
    report.stats.partial = cluster.partial;
    report.stats.stop_reason = cluster.stop_reason;
    return report;
  }

  if (hierarchies == nullptr) {
    return Status::Internal("lattice stage reached without hierarchies");
  }
  GeneralizationLattice lattice(*hierarchies);

  if (algorithm == AnonymizationAlgorithm::kFullSuppression) {
    // Last resort: mask at the lattice top. O(n), budget-exempt.
    TraceSpan span(trace, "materialize");
    LatticeNode top = lattice.Top();
    PSK_ASSIGN_OR_RETURN(MaskedMicrodata mm,
                         Mask(im, *hierarchies, top, base_options.k));
    report.masked = std::move(mm.table);
    report.node = top;
    report.suppressed = mm.suppressed;
    report.precision = Precision(top, *hierarchies);
    return report;
  }

  SearchOptions options = base_options;
  options.budget = budget;

  std::optional<LatticeNode> node;
  SearchStats stats;
  if (algorithm == AnonymizationAlgorithm::kOla) {
    OlaOptions ola_options;
    ola_options.search = options;
    PSK_ASSIGN_OR_RETURN(OlaResult ola, OlaSearch(im, *hierarchies,
                                                  ola_options));
    stats = ola.stats;
    if (ola.condition1_failed) {
      return Status::FailedPrecondition(
          "Condition 1 fails: some confidential attribute has fewer than p "
          "distinct values");
    }
    if (ola.found) node = ola.optimal;
  } else if (algorithm == AnonymizationAlgorithm::kSamarati) {
    PSK_ASSIGN_OR_RETURN(SearchResult result,
                         SamaratiSearch(im, *hierarchies, options));
    stats = result.stats;
    if (result.condition1_failed) {
      return Status::FailedPrecondition(
          "Condition 1 fails: some confidential attribute has fewer than p "
          "distinct values");
    }
    if (result.found) node = result.node;
  } else {
    MinimalSetResult result;
    switch (algorithm) {
      case AnonymizationAlgorithm::kIncognito: {
        PSK_ASSIGN_OR_RETURN(result,
                             IncognitoSearch(im, *hierarchies, options));
        break;
      }
      case AnonymizationAlgorithm::kBottomUp: {
        PSK_ASSIGN_OR_RETURN(result,
                             BottomUpSearch(im, *hierarchies, options));
        break;
      }
      case AnonymizationAlgorithm::kExhaustive: {
        PSK_ASSIGN_OR_RETURN(result,
                             ExhaustiveSearch(im, *hierarchies, options));
        break;
      }
      default:
        return Status::Internal("unhandled algorithm");
    }
    stats = result.stats;
    if (result.condition1_failed) {
      return Status::FailedPrecondition(
          "Condition 1 fails: some confidential attribute has fewer than p "
          "distinct values");
    }
    if (const LatticeNode* best = PickNode(result.minimal_nodes)) {
      node = *best;
    }
  }

  if (stats.partial && stats.stop_reason == StatusCode::kCancelled) {
    // An explicit caller cancel abandons the run. Unlike a deadline or
    // memory stop (whose partial best-so-far release is the point), a
    // cancelled stage must not surface a release that depends on how far
    // the search happened to get before the flag was observed.
    return Status::Cancelled("run cancelled by caller");
  }

  if (!node.has_value()) {
    if (stats.partial) {
      // The budget ran out before the search reached any satisfying node;
      // surface the budget's own status so the caller (or the next
      // fallback stage) knows time, not feasibility, was the problem.
      return Status(stats.stop_reason,
                    "budget exhausted before any satisfying generalization "
                    "was found");
    }
    return Status::FailedPrecondition(
        "no full-domain generalization satisfies the requested k/p within "
        "the suppression budget");
  }

  TraceSpan materialize_span(trace, "materialize");
  PSK_ASSIGN_OR_RETURN(MaskedMicrodata mm,
                       Mask(im, *hierarchies, *node, base_options.k));
  report.masked = std::move(mm.table);
  report.node = *node;
  report.suppressed = mm.suppressed;
  report.stats = stats;
  report.partial = stats.partial;
  report.precision = Precision(*node, *hierarchies);
  return report;
}

}  // namespace

Result<AnonymizationReport> Anonymizer::Run() const {
  std::shared_ptr<RunTrace> trace;
  if (trace_enabled_ || !trace_sink_path_.empty()) {
    trace = std::make_shared<RunTrace>("run");
  }
  last_trace_ = trace;
  Result<AnonymizationReport> result = RunImpl(trace.get());
  if (trace != nullptr && !trace_sink_path_.empty()) {
    trace->Close();
    // The trace of a failed run is still written (it is the best
    // diagnostic of the failure), but only a successful run surfaces a
    // sink-write error — a failed write must not mask the run's status.
    Status written = trace->WriteJsonFile(trace_sink_path_);
    if (result.ok() && !written.ok()) return written;
  }
  // Without a sink the trace is left open on purpose: a caller (e.g. the
  // job layer's commit protocol) may append post-run spans before reading
  // it — ToJson/StructureSignature close it on demand.
  return result;
}

Result<AnonymizationReport> Anonymizer::RunImpl(RunTrace* trace) const {
  const Schema& schema = initial_microdata_.schema();
  std::vector<size_t> key_indices = schema.KeyIndices();
  if (key_indices.empty()) {
    return Status::FailedPrecondition(
        "the schema declares no key (quasi-identifier) attributes");
  }
  size_t n = initial_microdata_.num_rows();
  if (k_ > n) {
    return Status::FailedPrecondition(
        "k=" + std::to_string(k_) + " exceeds the number of rows (n=" +
        std::to_string(n) + "); no QI-group can ever reach k");
  }
  // A run cancelled before it starts must not charge memory or touch the
  // engines: the scheduler's sequential-restart demotion relies on a
  // cancelled attempt unwinding without new budget activity.
  if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
    return Status::Cancelled("run cancelled before start");
  }
  // Make the input table's bytes visible to the job's memory accountant
  // for the whole run (idempotent after a chunked Ingest loop, which has
  // already charged them). Failing here means the input alone is over the
  // job's hard quota — a budget stop with nothing to fall back on.
  PSK_RETURN_IF_ERROR(ChargeInputFootprint());

  std::vector<AnonymizationAlgorithm> chain;
  chain.push_back(algorithm_);
  chain.insert(chain.end(), fallback_chain_.begin(), fallback_chain_.end());

  if (trace != nullptr) {
    // Root-span provenance: the run's configuration, all structural.
    trace->Attr("algorithm", AlgorithmName(algorithm_));
    trace->Counter("rows", n);
    trace->Counter("k", k_);
    trace->Counter("p", p_);
    trace->Counter("max_suppression", max_suppression_);
    trace->Timing("threads", threads_);
  }

  // Lattice stages need one hierarchy per key attribute. Accept them in
  // any registration order and sort into schema order by name. Skipped
  // entirely for a pure local-recoding chain, which needs no hierarchies.
  bool needs_hierarchies = false;
  for (AnonymizationAlgorithm algorithm : chain) {
    if (NeedsHierarchies(algorithm)) needs_hierarchies = true;
  }
  std::optional<HierarchySet> hierarchy_set;
  if (needs_hierarchies) {
    TraceSpan preflight_span(trace, "preflight");
    preflight_span.Counter("hierarchies", hierarchies_.size());
    std::unordered_map<std::string, std::shared_ptr<const AttributeHierarchy>>
        by_name;
    for (const auto& hierarchy : hierarchies_) {
      if (hierarchy == nullptr) {
        return Status::InvalidArgument("null hierarchy registered");
      }
      if (!by_name.emplace(hierarchy->attribute_name(), hierarchy).second) {
        return Status::AlreadyExists("duplicate hierarchy for attribute '" +
                                     hierarchy->attribute_name() + "'");
      }
    }
    std::vector<std::shared_ptr<const AttributeHierarchy>> ordered;
    for (size_t col : key_indices) {
      auto it = by_name.find(schema.attribute(col).name);
      if (it == by_name.end()) {
        return Status::InvalidArgument(
            "no hierarchy registered for key attribute '" +
            schema.attribute(col).name + "'");
      }
      ordered.push_back(it->second);
    }
    if (by_name.size() != key_indices.size()) {
      return Status::InvalidArgument(
          "hierarchies registered for non-key attributes");
    }
    PSK_ASSIGN_OR_RETURN(hierarchy_set,
                         HierarchySet::Create(schema, std::move(ordered)));
    // Preflight: every observed key value must generalize at every level,
    // so configuration errors surface before the lattice search starts.
    for (size_t i = 0; i < hierarchy_set->size(); ++i) {
      PSK_RETURN_IF_ERROR(ValidateHierarchyOverColumn(
          initial_microdata_, key_indices[i], hierarchy_set->hierarchy(i)));
    }
  }

  SearchOptions base_options;
  base_options.k = k_;
  base_options.p = p_;
  base_options.max_suppression = max_suppression_;
  base_options.use_conditions = use_conditions_;
  base_options.use_encoded_core = use_encoded_core_;
  base_options.threads = threads_;
  base_options.min_rows_per_slice = min_rows_per_slice_;
  base_options.verdict_cache = verdict_cache_;
  base_options.trace = trace;
  // Crash-recovery hooks: node verdicts are pure functions of the data and
  // (k, p, TS), so one snapshot serves every lattice stage of the chain.
  base_options.restore = restore_snapshot_;
  base_options.checkpoint_sink = checkpoint_sink_;
  base_options.checkpoint_interval = checkpoint_interval_;

  // One clock for the whole Run: every stage gets the time still left when
  // it starts, so a slow primary cannot starve the chain of its own limit
  // accounting (a stage entered with zero remaining trips immediately and
  // falls through). Node/row caps apply per stage.
  BudgetEnforcer overall(budget_);

  // When every stage fails, the returned Status carries the *primary*
  // stage's error (the root cause) with each fallback stage's own failure
  // appended as context — a fallback that also failed must never replace
  // the message explaining why falling back was necessary in the first
  // place.
  Status root_cause = Status::OK();
  std::string fallback_context;
  for (size_t stage = 0; stage < chain.size(); ++stage) {
    RunBudget stage_budget = budget_;
    if (budget_.deadline.has_value()) {
      stage_budget.deadline = overall.Remaining();
    }
    // Explicit Begin/End (not RAII): the span must close before the guard
    // and scorecard phases, and a non-continuable error returns with the
    // span deliberately still open (RunTrace::Close repairs it at export,
    // and the truncated tree shows exactly where the run died).
    if (trace != nullptr) {
      trace->Begin("stage");
      trace->Attr("algorithm", AlgorithmName(chain[stage]));
      trace->Attr("index", std::to_string(stage));
    }
    Result<AnonymizationReport> attempt =
        RunStage(initial_microdata_,
                 hierarchy_set.has_value() ? &*hierarchy_set : nullptr,
                 chain[stage], base_options, stage_budget,
                 progress_heartbeat_);
    if (!attempt.ok()) {
      Status stage_error = attempt.status();
      if (trace != nullptr) {
        trace->Attr("outcome", StatusCodeToString(stage_error.code()));
        trace->End();
      }
      if (stage == 0) {
        root_cause = stage_error;
      } else {
        fallback_context += "; fallback " +
                            std::string(AlgorithmName(chain[stage])) +
                            " (stage " + std::to_string(stage) +
                            ") failed: " +
                            std::string(StatusCodeToString(
                                stage_error.code())) +
                            ": " + stage_error.message();
      }
      if (!ContinueChain(stage_error.code())) {
        // Non-continuable failures abort the chain immediately; a fallback
        // stage's abort still reports the root cause first.
        if (stage == 0) return stage_error;
        return Status(stage_error.code(),
                      root_cause.message() + fallback_context);
      }
      continue;
    }

    AnonymizationReport report = std::move(*attempt);
    report.algorithm_used = chain[stage];
    report.fallback_stage = stage;
    if (trace != nullptr) {
      // The stage span carries the full counter snapshot; trace_test holds
      // these equal to the report's own SearchStats.
      RecordStatsCounters(trace, report.stats);
      trace->Attr("outcome", "released");
      trace->End();
    }

    if (release_transform_ != nullptr) {
      TraceSpan span(trace, "transform");
      PSK_ASSIGN_OR_RETURN(report.masked,
                           release_transform_(std::move(report.masked)));
    }
    if (guard_enabled_) {
      TraceSpan span(trace, "guard");
      GuardPolicy policy;
      if (guard_policy_.has_value()) {
        policy = *guard_policy_;
      } else {
        policy.k = k_;
        policy.p = p_;
        policy.max_suppression = max_suppression_;
        // p-sensitivity with p >= 2 implies zero attribute disclosures;
        // hold every release to that.
        if (p_ >= 2) policy.max_attribute_disclosures = 0;
      }
      // Guard refusal is final — a violating release must not escape, and
      // falling back to a *weaker* algorithm could not fix it anyway.
      PSK_RETURN_IF_ERROR(EnforceRelease(report.masked, n, policy,
                                         &report.guard, trace));
    }
    TraceSpan scorecard_span(trace, "scorecard");
    PSK_RETURN_IF_ERROR(FillScorecard(initial_microdata_, &report));
    PSK_ASSIGN_OR_RETURN(
        report.normalized_avg_group_size,
        NormalizedAvgGroupSize(report.masked,
                               report.masked.schema().KeyIndices(), k_));
    return report;
  }
  return Status(root_cause.code(), root_cause.message() + fallback_context);
}

}  // namespace psk
