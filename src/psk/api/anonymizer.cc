#include "psk/api/anonymizer.h"

#include <algorithm>
#include <unordered_map>

#include "psk/algorithms/bottom_up.h"
#include "psk/algorithms/exhaustive.h"
#include "psk/algorithms/greedy_cluster.h"
#include "psk/algorithms/incognito.h"
#include "psk/algorithms/mondrian.h"
#include "psk/algorithms/ola.h"
#include "psk/algorithms/samarati.h"
#include "psk/anonymity/kanonymity.h"
#include "psk/anonymity/psensitive.h"
#include "psk/metrics/metrics.h"
#include "psk/metrics/risk.h"

namespace psk {
namespace {

// Scores the masked microdata; shared by every algorithm branch.
Status FillScorecard(const Table& im, AnonymizationReport* report) {
  const Table& masked = report->masked;
  std::vector<size_t> keys = masked.schema().KeyIndices();
  std::vector<size_t> confs = masked.schema().ConfidentialIndices();
  PSK_ASSIGN_OR_RETURN(report->achieved_k, AnonymityK(masked, keys));
  if (!confs.empty()) {
    PSK_ASSIGN_OR_RETURN(report->achieved_p,
                         SensitivityP(masked, keys, confs));
    PSK_ASSIGN_OR_RETURN(report->attribute_disclosures,
                         CountAttributeDisclosures(masked, keys, confs));
  }
  PSK_ASSIGN_OR_RETURN(report->reidentification_risk,
                       MarketerRisk(masked, keys));
  PSK_ASSIGN_OR_RETURN(
      report->discernibility,
      DiscernibilityMetric(masked, keys, report->suppressed, im.num_rows()));
  return Status::OK();
}

// Among a set of minimal nodes, prefer the lowest height, then
// lexicographic order (deterministic).
const LatticeNode* PickNode(const std::vector<LatticeNode>& nodes) {
  const LatticeNode* best = nullptr;
  for (const LatticeNode& node : nodes) {
    if (best == nullptr || node.Height() < best->Height() ||
        (node.Height() == best->Height() && node < *best)) {
      best = &node;
    }
  }
  return best;
}

}  // namespace

Result<AnonymizationReport> Anonymizer::Run() const {
  const Schema& schema = initial_microdata_.schema();
  std::vector<size_t> key_indices = schema.KeyIndices();
  if (key_indices.empty()) {
    return Status::FailedPrecondition(
        "the schema declares no key (quasi-identifier) attributes");
  }

  if (algorithm_ == AnonymizationAlgorithm::kMondrian ||
      algorithm_ == AnonymizationAlgorithm::kGreedyCluster) {
    AnonymizationReport report;
    if (algorithm_ == AnonymizationAlgorithm::kMondrian) {
      MondrianOptions options;
      options.k = k_;
      options.p = p_;
      PSK_ASSIGN_OR_RETURN(MondrianResult mondrian,
                           MondrianAnonymize(initial_microdata_, options));
      report.masked = std::move(mondrian.masked);
    } else {
      GreedyClusterOptions options;
      options.k = k_;
      options.p = p_;
      PSK_ASSIGN_OR_RETURN(
          GreedyClusterResult cluster,
          GreedyClusterAnonymize(initial_microdata_, options));
      report.masked = std::move(cluster.masked);
    }
    PSK_RETURN_IF_ERROR(FillScorecard(initial_microdata_, &report));
    PSK_ASSIGN_OR_RETURN(
        report.normalized_avg_group_size,
        NormalizedAvgGroupSize(report.masked,
                               report.masked.schema().KeyIndices(), k_));
    return report;
  }

  // Lattice algorithms need one hierarchy per key attribute. Accept them
  // in any registration order and sort into schema order by name.
  std::unordered_map<std::string, std::shared_ptr<const AttributeHierarchy>>
      by_name;
  for (const auto& hierarchy : hierarchies_) {
    if (hierarchy == nullptr) {
      return Status::InvalidArgument("null hierarchy registered");
    }
    if (!by_name.emplace(hierarchy->attribute_name(), hierarchy).second) {
      return Status::AlreadyExists("duplicate hierarchy for attribute '" +
                                   hierarchy->attribute_name() + "'");
    }
  }
  std::vector<std::shared_ptr<const AttributeHierarchy>> ordered;
  for (size_t col : key_indices) {
    auto it = by_name.find(schema.attribute(col).name);
    if (it == by_name.end()) {
      return Status::InvalidArgument(
          "no hierarchy registered for key attribute '" +
          schema.attribute(col).name + "'");
    }
    ordered.push_back(it->second);
  }
  if (by_name.size() != key_indices.size()) {
    return Status::InvalidArgument(
        "hierarchies registered for non-key attributes");
  }
  PSK_ASSIGN_OR_RETURN(HierarchySet hierarchy_set,
                       HierarchySet::Create(schema, std::move(ordered)));
  // Preflight: every observed key value must generalize at every level,
  // so configuration errors surface before the lattice search starts.
  for (size_t i = 0; i < hierarchy_set.size(); ++i) {
    PSK_RETURN_IF_ERROR(ValidateHierarchyOverColumn(
        initial_microdata_, key_indices[i], hierarchy_set.hierarchy(i)));
  }

  SearchOptions options;
  options.k = k_;
  options.p = p_;
  options.max_suppression = max_suppression_;
  options.use_conditions = use_conditions_;

  std::optional<LatticeNode> node;
  SearchStats stats;
  if (algorithm_ == AnonymizationAlgorithm::kOla) {
    OlaOptions ola_options;
    ola_options.search = options;
    PSK_ASSIGN_OR_RETURN(
        OlaResult ola,
        OlaSearch(initial_microdata_, hierarchy_set, ola_options));
    stats = ola.stats;
    if (ola.condition1_failed) {
      return Status::FailedPrecondition(
          "Condition 1 fails: some confidential attribute has fewer than p "
          "distinct values");
    }
    if (ola.found) node = ola.optimal;
  } else if (algorithm_ == AnonymizationAlgorithm::kSamarati) {
    PSK_ASSIGN_OR_RETURN(
        SearchResult result,
        SamaratiSearch(initial_microdata_, hierarchy_set, options));
    stats = result.stats;
    if (result.found) node = result.node;
    if (result.condition1_failed) {
      return Status::FailedPrecondition(
          "Condition 1 fails: some confidential attribute has fewer than p "
          "distinct values");
    }
  } else {
    MinimalSetResult result;
    switch (algorithm_) {
      case AnonymizationAlgorithm::kIncognito: {
        PSK_ASSIGN_OR_RETURN(
            result,
            IncognitoSearch(initial_microdata_, hierarchy_set, options));
        break;
      }
      case AnonymizationAlgorithm::kBottomUp: {
        PSK_ASSIGN_OR_RETURN(
            result,
            BottomUpSearch(initial_microdata_, hierarchy_set, options));
        break;
      }
      case AnonymizationAlgorithm::kExhaustive: {
        PSK_ASSIGN_OR_RETURN(
            result,
            ExhaustiveSearch(initial_microdata_, hierarchy_set, options));
        break;
      }
      default:
        return Status::Internal("unhandled algorithm");
    }
    stats = result.stats;
    if (result.condition1_failed) {
      return Status::FailedPrecondition(
          "Condition 1 fails: some confidential attribute has fewer than p "
          "distinct values");
    }
    if (const LatticeNode* best = PickNode(result.minimal_nodes)) {
      node = *best;
    }
  }

  if (!node.has_value()) {
    return Status::FailedPrecondition(
        "no full-domain generalization satisfies the requested k/p within "
        "the suppression budget");
  }

  PSK_ASSIGN_OR_RETURN(
      MaskedMicrodata mm,
      Mask(initial_microdata_, hierarchy_set, *node, k_));
  AnonymizationReport report;
  report.masked = std::move(mm.table);
  report.node = *node;
  report.suppressed = mm.suppressed;
  report.stats = stats;
  report.precision = Precision(*node, hierarchy_set);
  PSK_RETURN_IF_ERROR(FillScorecard(initial_microdata_, &report));
  PSK_ASSIGN_OR_RETURN(
      report.normalized_avg_group_size,
      NormalizedAvgGroupSize(report.masked,
                             report.masked.schema().KeyIndices(), k_));
  return report;
}

}  // namespace psk
