#include "psk/api/spec_parser.h"

#include <fstream>
#include <sstream>

#include "psk/common/string_util.h"
#include "psk/hierarchy/hierarchy_io.h"

namespace psk {
namespace {

Result<AttributeRole> ParseRole(const std::string& role) {
  if (role == "identifier") return AttributeRole::kIdentifier;
  if (role == "key") return AttributeRole::kKey;
  if (role == "confidential") return AttributeRole::kConfidential;
  if (role == "other") return AttributeRole::kOther;
  return Status::InvalidArgument("unknown role: " + role);
}

Result<ValueType> ParseType(const std::string& type) {
  if (type == "string") return ValueType::kString;
  if (type == "int64" || type == "int") return ValueType::kInt64;
  if (type == "double") return ValueType::kDouble;
  return Status::InvalidArgument("unknown type: " + type);
}

}  // namespace

Result<Attribute> ParseAttributeSpec(const std::string& spec) {
  std::vector<std::string> parts = Split(spec, ':');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        "attribute spec must be NAME:TYPE:ROLE: " + spec);
  }
  Attribute attr;
  attr.name = std::string(Trim(parts[0]));
  if (attr.name.empty()) {
    return Status::InvalidArgument("attribute name is empty: " + spec);
  }
  PSK_ASSIGN_OR_RETURN(attr.type, ParseType(std::string(Trim(parts[1]))));
  PSK_ASSIGN_OR_RETURN(attr.role, ParseRole(std::string(Trim(parts[2]))));
  return attr;
}

Result<std::shared_ptr<const AttributeHierarchy>> ParseHierarchySpec(
    const std::string& attribute, const std::string& spec) {
  if (spec == "suppress") {
    return std::shared_ptr<const AttributeHierarchy>(
        std::make_shared<SuppressionHierarchy>(attribute));
  }
  if (StartsWith(spec, "prefix:")) {
    std::vector<int> masked;
    for (const std::string& field : Split(spec.substr(7), ',')) {
      PSK_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      masked.push_back(static_cast<int>(v));
    }
    PSK_ASSIGN_OR_RETURN(auto h, PrefixHierarchy::Create(attribute, masked));
    return std::shared_ptr<const AttributeHierarchy>(h);
  }
  if (StartsWith(spec, "interval:")) {
    std::vector<IntervalHierarchy::Level> levels;
    for (const std::string& level : Split(spec.substr(9), '/')) {
      if (level == "top") {
        levels.push_back(IntervalHierarchy::Level::Top());
      } else if (StartsWith(level, "bands-")) {
        PSK_ASSIGN_OR_RETURN(int64_t width, ParseInt64(level.substr(6)));
        levels.push_back(IntervalHierarchy::Level::Bands(width));
      } else if (StartsWith(level, "cuts-")) {
        std::vector<int64_t> cuts;
        for (const std::string& cut : Split(level.substr(5), '-')) {
          PSK_ASSIGN_OR_RETURN(int64_t v, ParseInt64(cut));
          cuts.push_back(v);
        }
        levels.push_back(IntervalHierarchy::Level::Cuts(std::move(cuts)));
      } else {
        return Status::InvalidArgument("unknown interval level: " + level);
      }
    }
    PSK_ASSIGN_OR_RETURN(auto h,
                         IntervalHierarchy::Create(attribute, levels));
    return std::shared_ptr<const AttributeHierarchy>(h);
  }
  if (StartsWith(spec, "file:")) {
    std::string rest = spec.substr(5);
    char sep = ';';
    size_t sep_pos = rest.find(';');
    if (sep_pos != std::string::npos && sep_pos + 1 < rest.size()) {
      sep = rest[sep_pos + 1];
      rest = rest.substr(0, sep_pos);
    }
    PSK_ASSIGN_OR_RETURN(auto h, LoadTaxonomyCsvFile(rest, attribute, sep));
    return std::shared_ptr<const AttributeHierarchy>(h);
  }
  return Status::InvalidArgument("unknown hierarchy spec: " + spec);
}

Result<AnonymizationAlgorithm> ParseAlgorithmName(const std::string& name) {
  if (name == "samarati") return AnonymizationAlgorithm::kSamarati;
  if (name == "incognito") return AnonymizationAlgorithm::kIncognito;
  if (name == "bottomup") return AnonymizationAlgorithm::kBottomUp;
  if (name == "exhaustive") return AnonymizationAlgorithm::kExhaustive;
  if (name == "mondrian") return AnonymizationAlgorithm::kMondrian;
  if (name == "cluster") return AnonymizationAlgorithm::kGreedyCluster;
  if (name == "ola") return AnonymizationAlgorithm::kOla;
  if (name == "fullsuppression") {
    return AnonymizationAlgorithm::kFullSuppression;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::string_view AlgorithmName(AnonymizationAlgorithm algorithm) {
  switch (algorithm) {
    case AnonymizationAlgorithm::kSamarati:
      return "samarati";
    case AnonymizationAlgorithm::kIncognito:
      return "incognito";
    case AnonymizationAlgorithm::kBottomUp:
      return "bottomup";
    case AnonymizationAlgorithm::kExhaustive:
      return "exhaustive";
    case AnonymizationAlgorithm::kMondrian:
      return "mondrian";
    case AnonymizationAlgorithm::kGreedyCluster:
      return "cluster";
    case AnonymizationAlgorithm::kOla:
      return "ola";
    case AnonymizationAlgorithm::kFullSuppression:
      return "fullsuppression";
  }
  return "unknown";
}

Result<ReleaseConfig> ParseReleaseConfig(std::string_view text) {
  ReleaseConfig config;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    auto fail = [&](const std::string& message) -> Status {
      return Status::InvalidArgument("config line " +
                                     std::to_string(line_no) + ": " +
                                     message);
    };
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected 'key = value'");
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    if (value.empty()) return fail("empty value for '" + key + "'");

    if (StartsWith(key, "attr ")) {
      std::string name(Trim(std::string_view(key).substr(5)));
      if (name.empty()) return fail("attribute name missing");
      for (const Attribute& existing : config.attributes) {
        if (existing.name == name) {
          return fail("duplicate attribute '" + name + "'");
        }
      }
      // value: "<type> <role> [hierarchy=<spec>]"
      std::istringstream fields(value);
      std::string type_token;
      std::string role_token;
      fields >> type_token >> role_token;
      if (type_token.empty() || role_token.empty()) {
        return fail("attribute needs '<type> <role>'");
      }
      Result<Attribute> attr =
          ParseAttributeSpec(name + ":" + type_token + ":" + role_token);
      if (!attr.ok()) return fail(attr.status().message());
      std::string extra;
      while (fields >> extra) {
        if (StartsWith(extra, "hierarchy=")) {
          Result<std::shared_ptr<const AttributeHierarchy>> hierarchy =
              ParseHierarchySpec(name, extra.substr(10));
          if (!hierarchy.ok()) return fail(hierarchy.status().message());
          config.hierarchies.push_back(std::move(hierarchy).value());
        } else {
          return fail("unknown attribute option: " + extra);
        }
      }
      config.attributes.push_back(std::move(attr).value());
      continue;
    }

    if (key == "input") {
      config.input = value;
    } else if (key == "output") {
      config.output = value;
    } else if (key == "k" || key == "p" || key == "ts") {
      Result<int64_t> parsed = ParseInt64(value);
      if (!parsed.ok() || *parsed < 0) {
        return fail("'" + key + "' must be a non-negative integer");
      }
      if (key == "k") config.k = static_cast<size_t>(*parsed);
      if (key == "p") config.p = static_cast<size_t>(*parsed);
      if (key == "ts") config.max_suppression = static_cast<size_t>(*parsed);
    } else if (key == "algorithm") {
      Result<AnonymizationAlgorithm> algorithm = ParseAlgorithmName(value);
      if (!algorithm.ok()) return fail(algorithm.status().message());
      config.algorithm = *algorithm;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (config.attributes.empty()) {
    return Status::InvalidArgument("config declares no attributes");
  }
  return config;
}

Result<ReleaseConfig> ParseReleaseConfigFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseReleaseConfig(buffer.str());
}

}  // namespace psk
