#ifndef PSK_API_SPEC_PARSER_H_
#define PSK_API_SPEC_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "psk/api/anonymizer.h"
#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/schema.h"

namespace psk {

/// Textual mini-language for configuring an anonymization run — used by
/// the anonymize_csv tool and by release-config files, and available to
/// any embedding application.

/// "NAME:TYPE:ROLE", e.g. "Age:int64:key". Types: string, int64/int,
/// double. Roles: identifier, key, confidential, other.
Result<Attribute> ParseAttributeSpec(const std::string& spec);

/// Hierarchy specs, attached to `attribute`:
///   suppress                        value -> *
///   prefix:0,2,5                    trailing characters masked per level
///   interval:bands-10/cuts-50/top   numeric levels in order
///   file:PATH[;SEP]                 ARX-style taxonomy CSV
Result<std::shared_ptr<const AttributeHierarchy>> ParseHierarchySpec(
    const std::string& attribute, const std::string& spec);

/// "samarati" | "incognito" | "bottomup" | "exhaustive" | "mondrian" |
/// "cluster" | "ola" | "fullsuppression".
Result<AnonymizationAlgorithm> ParseAlgorithmName(const std::string& name);

/// Stable name for an algorithm; inverse of ParseAlgorithmName. Used by
/// the job journal and the JSON report writer, so renaming a value here
/// breaks resumability of on-disk jobs.
std::string_view AlgorithmName(AnonymizationAlgorithm algorithm);

/// A parsed release configuration file. Format: one `key = value` pair per
/// line; `#` starts a comment; attribute lines use
///
///   attr <Name> = <type> <role> [hierarchy=<spec>]
///
/// Recognized scalar keys: input, output, k, p, ts, algorithm.
struct ReleaseConfig {
  std::string input;
  std::string output;
  size_t k = 2;
  size_t p = 1;
  size_t max_suppression = 0;
  AnonymizationAlgorithm algorithm = AnonymizationAlgorithm::kSamarati;
  std::vector<Attribute> attributes;
  /// Hierarchies keyed by attribute, in declaration order.
  std::vector<std::shared_ptr<const AttributeHierarchy>> hierarchies;
};

/// Parses a release configuration from text. Unknown keys, malformed
/// lines, or duplicate attributes are errors (with the line number in the
/// message).
Result<ReleaseConfig> ParseReleaseConfig(std::string_view text);

/// Reads and parses a configuration file from disk.
Result<ReleaseConfig> ParseReleaseConfigFile(const std::string& path);

}  // namespace psk

#endif  // PSK_API_SPEC_PARSER_H_
