#include "psk/service/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "psk/common/durable_file.h"
#include "psk/common/run_budget.h"
#include "psk/trace/trace.h"

namespace psk {
namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic weighted round-robin over the priority classes:
/// interactive 3 : normal 2 : batch 1 per full rotation. Every class
/// appears, so nothing starves; the rotation index advances only when a
/// job is actually drawn, so the pattern is stable under empty queues.
constexpr JobPriority kDispatchPattern[] = {
    JobPriority::kInteractive, JobPriority::kNormal,
    JobPriority::kInteractive, JobPriority::kBatch,
    JobPriority::kInteractive, JobPriority::kNormal,
};
constexpr size_t kDispatchPatternLength =
    sizeof(kDispatchPattern) / sizeof(kDispatchPattern[0]);

bool IsTerminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// One scheduled job and all its run-control plumbing. Owned by a
/// shared_ptr so an abandoned executor thread finishing late still holds
/// valid state. All mutable fields are guarded by State::mu except the
/// shared control objects (token/budget/heartbeat/cache), which are
/// thread-safe themselves and immutable as pointers after construction.
struct SchedulerJob {
  uint64_t id = 0;
  std::string name;
  JobPriority priority = JobPriority::kNormal;
  JobSpec spec;
  std::string job_dir;
  std::function<void()> on_start;

  JobState state = JobState::kQueued;
  int attempts = 0;
  int degrade_level = 0;
  /// Sweep threads for the next attempt (rung 2 drops this to 1).
  size_t threads = 1;

  std::shared_ptr<CancelToken> cancel = std::make_shared<CancelToken>();
  std::shared_ptr<MemoryBudget> memory = std::make_shared<MemoryBudget>();
  std::shared_ptr<std::atomic<uint64_t>> heartbeat =
      std::make_shared<std::atomic<uint64_t>>(0);
  std::shared_ptr<VerdictCache> cache = std::make_shared<VerdictCache>();

  // Watchdog bookkeeping.
  uint64_t last_heartbeat = 0;
  Clock::time_point last_progress{};
  Clock::time_point last_rung_at{};
  bool watchdog_cancelled = false;
  Clock::time_point hard_cancel_at{};
  bool user_cancelled = false;
  /// Rung 2: the current attempt is being cancelled only to restart the
  /// job sequentially — its kCancelled is a requeue, not a terminal.
  bool restart_requested = false;
  /// Retry-backoff gate: not dispatched before this instant.
  Clock::time_point not_before{};

  Status final_status = Status::OK();
  AnonymizationReport report;
  bool has_report = false;
};

struct SchedulerEvent {
  std::string action;
  std::string job;
  std::string detail;
};

}  // namespace

const char* JobPriorityName(JobPriority priority) {
  switch (priority) {
    case JobPriority::kBatch:
      return "batch";
    case JobPriority::kNormal:
      return "normal";
    case JobPriority::kInteractive:
      return "interactive";
  }
  return "unknown";
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// All shared scheduler state lives behind one shared_ptr: executor
/// threads (including abandoned ones that outlive the scheduler object)
/// and the watchdog each hold a reference, so nothing they touch is freed
/// under them even if the JobScheduler is destroyed while a hard-hung
/// detached thread is still blocked.
struct JobScheduler::State {
  SchedulerOptions options;

  mutable std::mutex mu;
  /// Executors sleep here; signalled on submit/requeue/stop.
  std::condition_variable work_cv;
  /// Wait()/Stop() drain sleeps here; signalled on any terminal.
  std::condition_variable terminal_cv;
  /// Watchdog cadence; signalled on stop.
  std::condition_variable watchdog_cv;

  bool accepting = true;
  bool stop = false;
  bool watchdog_stop = false;
  std::once_flag stop_once;

  uint64_t next_id = 1;
  /// Admission order == id order (std::map iterates sorted).
  std::map<uint64_t, std::shared_ptr<SchedulerJob>> jobs;
  std::deque<std::shared_ptr<SchedulerJob>> queues[3];
  size_t rr_index = 0;

  SchedulerStats stats;
  std::vector<SchedulerEvent> events;

  /// One executor seat. Slots are heap-allocated and never erased, so a
  /// raw pointer into the vector stays valid as replacements are added.
  struct Slot {
    std::thread thread;
    std::shared_ptr<SchedulerJob> running;
    /// Set by the watchdog's hard cancel: the thread was detached and
    /// must exit without touching scheduler bookkeeping when (if) its
    /// blocked attempt ever returns.
    bool abandoned = false;
  };
  std::vector<std::unique_ptr<Slot>> slots;
  std::thread watchdog;

  void Append(std::string action, std::string job, std::string detail) {
    events.push_back(
        {std::move(action), std::move(job), std::move(detail)});
  }

  size_t QueuedLocked() const {
    return queues[0].size() + queues[1].size() + queues[2].size();
  }

  uint64_t LiveMemoryLocked() const {
    uint64_t total = 0;
    for (const auto& [id, job] : jobs) {
      if (!IsTerminal(job->state)) total += job->memory->bytes_used();
    }
    return total;
  }
};

namespace {

/// Picks the next dispatchable job per the weighted round-robin pattern,
/// honoring retry-backoff gates. Fills *next_wake with the earliest gated
/// job's release time (untouched when nothing is gated).
std::shared_ptr<SchedulerJob> PickLocked(JobScheduler::State& s,
                                         Clock::time_point now,
                                         Clock::time_point* next_wake) {
  for (size_t i = 0; i < kDispatchPatternLength; ++i) {
    size_t cls = static_cast<size_t>(
        kDispatchPattern[(s.rr_index + i) % kDispatchPatternLength]);
    auto& queue = s.queues[cls];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if ((*it)->not_before <= now) {
        std::shared_ptr<SchedulerJob> job = *it;
        queue.erase(it);
        s.rr_index = (s.rr_index + i + 1) % kDispatchPatternLength;
        return job;
      }
      *next_wake = std::min(*next_wake, (*it)->not_before);
    }
  }
  return nullptr;
}

/// One attempt of one job, run with State::mu released. Reads only fields
/// no other thread writes while the job is running (the spec, the shared
/// control objects, and `threads`, which only the owning executor
/// mutates).
Status RunAttempt(const SchedulerOptions& options, SchedulerJob& job,
                  bool resume, AnonymizationReport* report) {
  if (job.on_start) job.on_start();

  // Streaming input: drained into the job's spec on the first attempt,
  // chunk-metered against the job's quota (over-quota inputs fail here
  // with kResourceExhausted, before any search work). The source is
  // one-shot; materializing into job.spec means retries and the durable
  // journal's input digest see an ordinary table. Only the owning
  // executor touches job.spec, so this mutation is race-free.
  if (job.spec.input_source) {
    PSK_RETURN_IF_ERROR(MaterializeJobInput(&job.spec, job.memory));
  }

  // Per-attempt copy: the scheduler owns the run-control plumbing and
  // must not leak it into the caller's spec (or across jobs).
  JobSpec spec = job.spec;
  spec.budget.cancel = job.cancel;
  spec.budget.memory = job.memory;
  spec.budget.heartbeat = job.heartbeat;
  spec.threads = job.threads;
  spec.verdict_cache = job.cache;

  if (job.job_dir.empty()) {
    // In-memory job: no journal, no checkpoints — the retry path simply
    // re-runs (the engines are deterministic).
    Anonymizer anonymizer(spec.input);
    for (const auto& hierarchy : spec.hierarchies) {
      anonymizer.AddHierarchy(hierarchy);
    }
    anonymizer.set_k(spec.k)
        .set_p(spec.p)
        .set_max_suppression(spec.max_suppression)
        .set_algorithm(spec.algorithm)
        .set_budget(spec.budget)
        .set_threads(spec.threads)
        .set_guard_enabled(spec.guard_enabled);
    anonymizer.set_verdict_cache(spec.verdict_cache);
    if (!spec.fallback_chain.empty()) {
      anonymizer.set_fallback_chain(spec.fallback_chain);
    }
    Result<AnonymizationReport> run = anonymizer.Run();
    if (!run.ok()) return run.status();
    *report = std::move(*run);
    return Status::OK();
  }

  // Durable job: crash-safe execution through JobRunner. Retries Resume
  // from the last checkpoint; a first attempt that failed before its
  // journal landed falls back to a fresh Run.
  JobRunner runner(job.job_dir);
  runner.set_lock_wait(options.lock_wait);
  Result<JobOutcome> outcome =
      resume ? runner.Resume(spec) : runner.Run(spec);
  if (!outcome.ok() && resume &&
      outcome.status().code() == StatusCode::kNotFound) {
    outcome = runner.Run(spec);
  }
  if (!outcome.ok()) return outcome.status();
  *report = std::move(outcome->report);
  return Status::OK();
}

/// Books one finished attempt: terminal, degrade-restart requeue, or
/// retry requeue. Caller holds State::mu.
void ResolveAttemptLocked(JobScheduler::State& s,
                          const std::shared_ptr<SchedulerJob>& job,
                          Status status, AnonymizationReport report) {
  Clock::time_point now = Clock::now();
  size_t cls = static_cast<size_t>(job->priority);
  if (status.ok()) {
    job->state = JobState::kCompleted;
    job->final_status = Status::OK();
    job->report = std::move(report);
    job->has_report = true;
    ++s.stats.completed;
    s.Append(job->report.partial ? "complete.partial" : "complete",
             job->name,
             "attempt " + std::to_string(job->attempts));
  } else if (job->restart_requested &&
             status.code() == StatusCode::kCancelled &&
             !job->user_cancelled) {
    // Ladder rung 2 landed: the parallel attempt was cancelled only to
    // come back on the checkpoint-friendly sequential path.
    job->restart_requested = false;
    job->cancel->Reset();
    job->threads = 1;
    job->state = JobState::kQueued;
    job->not_before = now;
    s.queues[cls].push_back(job);
    s.Append("degrade.sequential_restart", job->name, "threads=1");
    s.work_cv.notify_all();
    return;
  } else if (status.code() == StatusCode::kCancelled) {
    job->state = JobState::kCancelled;
    job->final_status = std::move(status);
    ++s.stats.cancelled;
    s.Append(job->user_cancelled ? "cancelled" : "cancelled.watchdog",
             job->name, job->final_status.message());
  } else if (status.retryable() &&
             job->attempts <= s.options.max_retries) {
    job->state = JobState::kQueued;
    job->not_before =
        now + RetryBackoffDelay(job->attempts - 1,
                                s.options.retry_backoff_base,
                                s.options.retry_backoff_cap);
    s.queues[cls].push_back(job);
    ++s.stats.retries;
    s.Append("retry", job->name, status.ToString());
    s.work_cv.notify_all();
    return;
  } else {
    job->state = JobState::kFailed;
    job->final_status = std::move(status);
    ++s.stats.failed;
    s.Append("failed", job->name, job->final_status.ToString());
  }
  s.terminal_cv.notify_all();
}

void ExecutorLoop(std::shared_ptr<JobScheduler::State> state,
                  JobScheduler::State::Slot* slot) {
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    if (state->stop || slot->abandoned) return;
    Clock::time_point now = Clock::now();
    Clock::time_point next_wake = now + std::chrono::hours(1);
    std::shared_ptr<SchedulerJob> job = PickLocked(*state, now, &next_wake);
    if (job == nullptr) {
      state->work_cv.wait_until(lock, next_wake);
      continue;
    }

    job->state = JobState::kRunning;
    ++job->attempts;
    bool resume = job->attempts > 1;
    job->last_heartbeat = job->heartbeat->load(std::memory_order_relaxed);
    job->last_progress = Clock::now();
    slot->running = job;
    state->Append("start", job->name,
                  "attempt " + std::to_string(job->attempts) + " threads=" +
                      std::to_string(job->threads));

    lock.unlock();
    AnonymizationReport report;
    Status status;
    try {
      status = RunAttempt(state->options, *job, resume, &report);
    } catch (const std::exception& e) {
      // A pool worker dying mid-sweep surfaces as one rethrown exception
      // (see ThreadPool::DrainIndices). The engines are deterministic, so
      // a fresh attempt is sound: classify as transient and let the
      // bounded-backoff retry path absorb it instead of unwinding this
      // executor thread.
      status = Status::Unavailable(std::string("attempt threw: ") + e.what());
    } catch (...) {
      status = Status::Unavailable("attempt threw a non-standard exception");
    }
    lock.lock();

    slot->running = nullptr;
    if (slot->abandoned) {
      // The watchdog hard-cancelled this job, forced it terminal, and
      // replaced this executor while the attempt was blocked. Record the
      // late return for the trace, touch nothing else, and exit.
      state->Append("executor.abandoned_attempt_returned", job->name,
                    status.ToString());
      return;
    }
    ResolveAttemptLocked(*state, job, std::move(status), std::move(report));
  }
}

/// Hard cancel: abandon the executor seat stuck on `job` (detach +
/// replace so scheduler capacity is restored) and force the job terminal.
/// Caller holds State::mu.
void HardCancelLocked(const std::shared_ptr<JobScheduler::State>& state,
                      const std::shared_ptr<SchedulerJob>& job) {
  for (auto& slot : state->slots) {
    if (slot->running == job && !slot->abandoned) {
      slot->abandoned = true;
      slot->thread.detach();
      state->slots.push_back(
          std::make_unique<JobScheduler::State::Slot>());
      JobScheduler::State::Slot* replacement = state->slots.back().get();
      replacement->thread =
          std::thread(ExecutorLoop, state, replacement);
      break;
    }
  }
  job->state = JobState::kCancelled;
  job->final_status = Status::Cancelled(
      "hard-cancelled by watchdog: job ignored cooperative cancellation "
      "for the whole grace period");
  ++state->stats.hard_cancels;
  ++state->stats.cancelled;
  state->Append("watchdog.hard_cancel", job->name, "executor abandoned");
  state->terminal_cv.notify_all();
}

void WatchdogLoop(std::shared_ptr<JobScheduler::State> state) {
  std::unique_lock<std::mutex> lock(state->mu);
  while (!state->watchdog_stop) {
    state->watchdog_cv.wait_for(lock, state->options.watchdog_interval);
    if (state->watchdog_stop) return;
    Clock::time_point now = Clock::now();
    const SchedulerOptions& options = state->options;
    for (auto& [id, job] : state->jobs) {
      if (job->state != JobState::kRunning) continue;

      // Liveness: a heartbeat that advanced since the last tick proves
      // the job is still doing budget-checkpointed work.
      uint64_t hb = job->heartbeat->load(std::memory_order_relaxed);
      if (hb != job->last_heartbeat) {
        job->last_heartbeat = hb;
        job->last_progress = now;
      }
      if (!job->watchdog_cancelled &&
          now - job->last_progress >= options.hung_timeout) {
        job->cancel->Cancel();
        job->watchdog_cancelled = true;
        job->hard_cancel_at = now + options.hard_cancel_grace;
        ++state->stats.watchdog_cancels;
        state->Append("watchdog.cancel", job->name,
                      "heartbeat frozen past hung_timeout");
      } else if (job->watchdog_cancelled && now >= job->hard_cancel_at) {
        HardCancelLocked(state, job);
        continue;  // terminal now; the ladder no longer applies
      }

      // Degradation ladder, one rung per dwell while the job sits over
      // its soft quota. ForceExhausted (rung 3) is a budget stop, not a
      // cancellation: the search unwinds with best-so-far partials and
      // the fallback chain still releases.
      if (job->memory->over_soft() && job->degrade_level < 3 &&
          now - job->last_rung_at >= options.watchdog_interval) {
        job->last_rung_at = now;
        if (job->degrade_level == 0) {
          job->cache->Shrink(options.cache_shrink_bytes);
          job->degrade_level = 1;
          ++state->stats.degrade_cache_shrinks;
          state->Append("degrade.cache_shrink", job->name,
                        "cap " + std::to_string(options.cache_shrink_bytes));
        } else if (job->degrade_level == 1) {
          if (job->threads > 1) {
            job->restart_requested = true;
            job->cancel->Cancel();
            ++state->stats.degrade_sequential_restarts;
            state->Append("degrade.sequential", job->name,
                          "restarting with threads=1");
          }
          job->degrade_level = 2;
        } else {
          job->memory->ForceExhausted();
          job->degrade_level = 3;
          ++state->stats.degrade_force_exhausted;
          state->Append("degrade.force_exhausted", job->name,
                        "memory budget force-exhausted; job will release "
                        "best-so-far partial results");
        }
      }
    }
  }
}

SchedulerJobStatus SnapshotLocked(const SchedulerJob& job) {
  SchedulerJobStatus status;
  status.id = job.id;
  status.name = job.name;
  status.priority = job.priority;
  status.state = job.state;
  status.attempts = job.attempts;
  status.degrade_level = job.degrade_level;
  status.memory_bytes = job.memory->bytes_used();
  status.memory_high_water = job.memory->high_water();
  status.heartbeat = job.heartbeat->load(std::memory_order_relaxed);
  return status;
}

}  // namespace

JobScheduler::JobScheduler(SchedulerOptions options)
    : state_(std::make_shared<State>()) {
  if (options.max_running == 0) options.max_running = 1;
  if (options.soft_quota_percent == 0 || options.soft_quota_percent > 100) {
    options.soft_quota_percent = 75;
  }
  state_->options = options;
  for (size_t i = 0; i < options.max_running; ++i) {
    state_->slots.push_back(std::make_unique<State::Slot>());
    State::Slot* slot = state_->slots.back().get();
    slot->thread = std::thread(ExecutorLoop, state_, slot);
  }
  state_->watchdog = std::thread(WatchdogLoop, state_);
}

JobScheduler::~JobScheduler() { Stop(); }

const SchedulerOptions& JobScheduler::options() const {
  return state_->options;
}

Result<uint64_t> JobScheduler::Submit(SchedulerJobRequest request) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State& s = *state_;
  if (!s.accepting) {
    return Status::Unavailable("scheduler is stopping; job not admitted");
  }
  std::string name = request.name.empty()
                         ? "job-" + std::to_string(s.next_id)
                         : std::move(request.name);
  // Admission control: shed instead of queueing unboundedly. Both
  // verdicts are retryable (kResourceExhausted + retry-after) so a
  // caller can back off and resubmit.
  if (s.QueuedLocked() >= s.options.max_queue_depth) {
    ++s.stats.shed;
    s.Append("shed.queue", name,
             "queue depth " + std::to_string(s.QueuedLocked()));
    return Status::ResourceExhausted(
               "admission queue is full (" +
               std::to_string(s.options.max_queue_depth) +
               " jobs waiting); retry later")
        .WithRetryAfterMs(s.options.shed_retry_after_ms);
  }
  if (s.options.max_total_memory > 0 &&
      s.LiveMemoryLocked() >= s.options.max_total_memory) {
    ++s.stats.shed;
    s.Append("shed.memory", name,
             "in-flight " + std::to_string(s.LiveMemoryLocked()) + " bytes");
    return Status::ResourceExhausted(
               "in-flight job memory exceeds max_total_memory (" +
               std::to_string(s.options.max_total_memory) +
               " bytes); retry later")
        .WithRetryAfterMs(s.options.shed_retry_after_ms);
  }

  auto job = std::make_shared<SchedulerJob>();
  job->id = s.next_id++;
  job->name = std::move(name);
  job->priority = request.priority;
  job->spec = std::move(request.spec);
  job->job_dir = std::move(request.job_dir);
  job->on_start = std::move(request.on_start);
  job->threads = std::max<size_t>(1, s.options.threads_per_job);
  uint64_t quota = request.memory_quota != 0 ? request.memory_quota
                                             : s.options.default_job_quota;
  if (quota > 0) {
    job->memory->set_hard_limit(quota);
    job->memory->set_soft_limit(quota * s.options.soft_quota_percent / 100);
  }
  // Every byte the job's verdict cache holds is charged to the job.
  job->cache->set_memory_budget(job->memory);

  s.jobs.emplace(job->id, job);
  s.queues[static_cast<size_t>(job->priority)].push_back(job);
  ++s.stats.submitted;
  s.Append("submit", job->name,
           std::string(JobPriorityName(job->priority)) +
               (job->job_dir.empty() ? "" : " durable"));
  s.work_cv.notify_all();
  return job->id;
}

Status JobScheduler::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State& s = *state_;
  auto it = s.jobs.find(id);
  if (it == s.jobs.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  const std::shared_ptr<SchedulerJob>& job = it->second;
  if (IsTerminal(job->state)) return Status::OK();
  job->user_cancelled = true;
  job->cancel->Cancel();
  if (job->state == JobState::kQueued) {
    auto& queue = s.queues[static_cast<size_t>(job->priority)];
    for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
      if (*qit == job) {
        queue.erase(qit);
        break;
      }
    }
    job->state = JobState::kCancelled;
    job->final_status = Status::Cancelled("cancelled before dispatch");
    ++s.stats.cancelled;
    s.Append("cancelled", job->name, "while queued");
    s.terminal_cv.notify_all();
  } else {
    s.Append("cancel.requested", job->name, "while running");
  }
  return Status::OK();
}

Result<SchedulerJobResult> JobScheduler::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(state_->mu);
  State& s = *state_;
  auto it = s.jobs.find(id);
  if (it == s.jobs.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  std::shared_ptr<SchedulerJob> job = it->second;
  s.terminal_cv.wait(lock, [&] { return IsTerminal(job->state); });
  SchedulerJobResult result;
  result.status = job->final_status;
  if (job->has_report) result.report = job->report;
  result.state = job->state;
  result.attempts = job->attempts;
  result.degrade_level = job->degrade_level;
  return result;
}

Result<SchedulerJobStatus> JobScheduler::Progress(uint64_t id) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->jobs.find(id);
  if (it == state_->jobs.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  return SnapshotLocked(*it->second);
}

std::vector<SchedulerJobStatus> JobScheduler::Jobs() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::vector<SchedulerJobStatus> out;
  out.reserve(state_->jobs.size());
  for (const auto& [id, job] : state_->jobs) {
    out.push_back(SnapshotLocked(*job));
  }
  return out;
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

std::vector<std::string> JobScheduler::Events() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::vector<std::string> out;
  out.reserve(state_->events.size());
  for (const SchedulerEvent& event : state_->events) {
    std::string line = event.action + " " + event.job;
    if (!event.detail.empty()) line += " (" + event.detail + ")";
    out.push_back(std::move(line));
  }
  return out;
}

std::string JobScheduler::TraceJson() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  // RunTrace's span stack is single-threaded by contract; building the
  // whole tree here, under the scheduler lock, satisfies it.
  RunTrace trace("scheduler");
  for (const SchedulerEvent& event : state_->events) {
    trace.Begin(event.action);
    trace.Attr("job", event.job);
    if (!event.detail.empty()) trace.Attr("detail", event.detail);
    trace.End();
  }
  for (const auto& [id, job] : state_->jobs) {
    trace.Begin("job");
    trace.Attr("name", job->name);
    trace.Attr("priority", JobPriorityName(job->priority));
    trace.Attr("state", JobStateName(job->state));
    trace.Counter("attempts", static_cast<uint64_t>(job->attempts));
    trace.Counter("degrade_level",
                  static_cast<uint64_t>(job->degrade_level));
    trace.Counter("memory_high_water", job->memory->high_water());
    trace.Counter("heartbeat",
                  job->heartbeat->load(std::memory_order_relaxed));
    trace.End();
  }
  return trace.ToJson();
}

void JobScheduler::Stop() {
  std::shared_ptr<State> state = state_;
  std::call_once(state->stop_once, [state] {
    std::unique_lock<std::mutex> lock(state->mu);
    state->accepting = false;
    state->Append("stop", "scheduler", "draining");
    // Drain every admitted job to a terminal state. Bounded: the
    // watchdog keeps running and escalates hung jobs to hard-cancel.
    state->terminal_cv.wait(lock, [&] {
      for (const auto& [id, job] : state->jobs) {
        if (!IsTerminal(job->state)) return false;
      }
      return true;
    });
    state->stop = true;
    state->work_cv.notify_all();
    state->watchdog_stop = true;
    state->watchdog_cv.notify_all();
    std::vector<std::thread> joiners;
    for (auto& slot : state->slots) {
      if (!slot->abandoned && slot->thread.joinable()) {
        joiners.push_back(std::move(slot->thread));
      }
    }
    std::thread watchdog = std::move(state->watchdog);
    lock.unlock();
    for (std::thread& thread : joiners) thread.join();
    if (watchdog.joinable()) watchdog.join();
  });
}

}  // namespace psk
