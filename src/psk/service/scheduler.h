#ifndef PSK_SERVICE_SCHEDULER_H_
#define PSK_SERVICE_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "psk/api/anonymizer.h"
#include "psk/common/result.h"
#include "psk/jobs/job.h"

namespace psk {

/// Dispatch class of one scheduled job. Higher classes are served more
/// often by the deterministic weighted round-robin pattern, but every
/// class appears in the pattern, so batch work is throttled — never
/// starved — while interactive jobs are in the queue.
enum class JobPriority {
  kBatch = 0,
  kNormal = 1,
  kInteractive = 2,
};

const char* JobPriorityName(JobPriority priority);

/// Lifecycle of one admitted job. Terminal states are kCompleted,
/// kFailed and kCancelled; a retried or degraded-restart job moves back
/// to kQueued between attempts.
enum class JobState {
  kQueued = 0,
  kRunning = 1,
  kCompleted = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* JobStateName(JobState state);

/// Tuning knobs for one JobScheduler. The defaults suit tests and small
/// embedded deployments; a service wraps its own policy around them.
struct SchedulerOptions {
  /// Executor threads = jobs running concurrently. Each running job may
  /// additionally shard its node sweeps over the shared ThreadPool (see
  /// threads_per_job); ThreadPool::FairShareWorkers keeps concurrent
  /// sweeps from oversubscribing the machine.
  size_t max_running = 2;
  /// Admission bound: Submit sheds (kResourceExhausted + retry-after)
  /// when this many jobs are already waiting in the queues.
  size_t max_queue_depth = 16;
  /// Admission bound on in-flight memory: Submit sheds while the live
  /// jobs' MemoryBudget charges sum past this. 0 = unlimited.
  uint64_t max_total_memory = 0;
  /// Per-job hard memory quota applied when a request does not carry its
  /// own. 0 = unlimited (no hard limit, no ladder).
  uint64_t default_job_quota = 0;
  /// The soft (advisory) limit that arms the degradation ladder is this
  /// fraction of the job's hard quota, in percent.
  uint32_t soft_quota_percent = 75;
  /// Ladder rung 1: the job's VerdictCache is shrunk to this cap.
  uint64_t cache_shrink_bytes = 64 * 1024;
  /// Watchdog poll cadence; also the minimum dwell between ladder rungs.
  std::chrono::milliseconds watchdog_interval{20};
  /// A running job whose heartbeat has not advanced for this long is
  /// presumed hung and cooperatively cancelled.
  std::chrono::milliseconds hung_timeout{1000};
  /// Grace after the cooperative cancel before the watchdog hard-cancels:
  /// the executor thread is abandoned (detached and replaced) and the job
  /// is forced terminal.
  std::chrono::milliseconds hard_cancel_grace{500};
  /// Re-dispatches of a job whose attempt failed with a retryable status
  /// (Status::retryable(): kUnavailable, or kResourceExhausted carrying a
  /// retry-after hint).
  int max_retries = 2;
  /// Exponential backoff between retry attempts (RetryBackoffDelay).
  std::chrono::milliseconds retry_backoff_base{10};
  std::chrono::milliseconds retry_backoff_cap{200};
  /// Retry-after hint attached to shed admissions.
  uint64_t shed_retry_after_ms = 100;
  /// Directory-lock wait passed to JobRunner for durable jobs.
  std::chrono::milliseconds lock_wait{250};
  /// Initial sweep threads per job (ladder rung 2 drops a job to 1).
  size_t threads_per_job = 1;
};

/// One admission request. `spec` carries the work; the scheduler owns the
/// run-control plumbing (CancelToken, MemoryBudget, heartbeat,
/// VerdictCache) and overwrites whatever the spec's budget carried.
struct SchedulerJobRequest {
  /// Display name for events/traces; defaults to "job-<id>" when empty.
  std::string name;
  JobSpec spec;
  /// Empty = in-memory execution (Anonymizer::Run, nothing durable).
  /// Non-empty = crash-safe execution through JobRunner in this
  /// directory; retries Resume() from the last checkpoint.
  std::string job_dir;
  JobPriority priority = JobPriority::kNormal;
  /// Hard memory quota for this job; 0 = SchedulerOptions::
  /// default_job_quota.
  uint64_t memory_quota = 0;
  /// Test seam: runs on the executor thread at the start of every
  /// attempt, before any search work (and before the first heartbeat
  /// tick, so a hook that blocks simulates a hung job).
  std::function<void()> on_start;
};

/// Final verdict of one job, returned by Wait().
struct SchedulerJobResult {
  /// OK for kCompleted; the failure/cancellation status otherwise.
  Status status = Status::OK();
  /// Valid when status is OK. partial=true means the degradation ladder
  /// (or the job's own budget) stopped the search and a fallback stage
  /// released best-so-far output.
  AnonymizationReport report;
  JobState state = JobState::kQueued;
  /// Attempts dispatched (1 = first attempt succeeded).
  int attempts = 0;
  /// Highest degradation rung reached: 0 none, 1 cache shrunk,
  /// 2 restarted sequential, 3 memory force-exhausted.
  int degrade_level = 0;
};

/// Point-in-time view of one job (Jobs()/Progress()).
struct SchedulerJobStatus {
  uint64_t id = 0;
  std::string name;
  JobPriority priority = JobPriority::kNormal;
  JobState state = JobState::kQueued;
  int attempts = 0;
  int degrade_level = 0;
  /// Live MemoryBudget charges (bytes) and the budget's high-water mark.
  uint64_t memory_bytes = 0;
  uint64_t memory_high_water = 0;
  /// Liveness counter (BudgetEnforcer checkpoints observed).
  uint64_t heartbeat = 0;
};

/// Monotone counters over the scheduler's lifetime.
struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t retries = 0;
  uint64_t watchdog_cancels = 0;
  uint64_t hard_cancels = 0;
  uint64_t degrade_cache_shrinks = 0;
  uint64_t degrade_sequential_restarts = 0;
  uint64_t degrade_force_exhausted = 0;
};

/// Overload-resilient multi-job scheduler: multiplexes concurrent
/// anonymization jobs onto one process with bounded admission, per-job
/// memory accounting, graceful degradation and a hang watchdog.
///
/// Admission. Submit() sheds load instead of queueing unboundedly: when
/// the queue is full or the live jobs' accounted memory exceeds
/// max_total_memory, it fails with kResourceExhausted carrying a
/// retry-after hint (Status::retryable() is true — the caller may come
/// back). Admitted jobs wait in per-priority FIFO queues served by a
/// deterministic weighted round-robin pattern (interactive 3 : normal 2 :
/// batch 1), so a flood of batch work cannot starve interactive jobs and
/// vice versa.
///
/// Isolation. Every job gets its own CancelToken, MemoryBudget,
/// VerdictCache and heartbeat counter, threaded through RunBudget into
/// the engines. Cancelling one job never stalls its neighbors: the sweep
/// workers observe only their owning job's token, and jobs sharing the
/// process ThreadPool split its workers via FairShareWorkers.
///
/// Degradation ladder. The watchdog walks an over-soft-quota job down
/// one rung per tick: (1) shrink its VerdictCache to cache_shrink_bytes;
/// (2) restart it on the checkpoint-friendly sequential path (threads=1 —
/// durable jobs resume from their last checkpoint); (3) force-exhaust its
/// MemoryBudget, which turns every budget checkpoint into a
/// kResourceExhausted budget stop: the search unwinds with best-so-far
/// partial results and the fallback chain (typically ending in
/// kFullSuppression) still releases. A rung-3 job therefore *completes*,
/// with report.partial — deliberately distinct from Cancel(), whose
/// kCancelled aborts the chain.
///
/// Watchdog. A job whose heartbeat freezes for hung_timeout is
/// cooperatively cancelled; if it stays deaf past hard_cancel_grace, the
/// watchdog abandons the executor thread (detach + replace) and forces
/// the job terminal, so one hung job can never wedge a scheduler slot.
///
/// Retries. Attempts failing with a retryable status (kUnavailable —
/// transient I/O, lock contention, injected faults) are re-queued with
/// bounded exponential backoff up to max_retries; durable jobs Resume()
/// from their last checkpoint.
///
/// All public methods are thread-safe.
class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options);
  /// Stop()s if the caller has not.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admits the job and returns its id, or sheds with kResourceExhausted
  /// (+ retry-after) / refuses with kUnavailable once Stop() has begun.
  Result<uint64_t> Submit(SchedulerJobRequest request);

  /// User cancellation: cancels the job's token (kCancelled aborts the
  /// fallback chain). A still-queued job is cancelled immediately.
  /// kNotFound for unknown ids; OK (idempotent) for terminal jobs.
  Status Cancel(uint64_t id);

  /// Blocks until the job is terminal and returns its result.
  Result<SchedulerJobResult> Wait(uint64_t id);

  /// Snapshot of one job / all jobs (admission order).
  Result<SchedulerJobStatus> Progress(uint64_t id) const;
  std::vector<SchedulerJobStatus> Jobs() const;

  SchedulerStats stats() const;

  /// Human-readable event log ("submit job-1 ...", "degrade.cache job-2
  /// ...") in the order things happened.
  std::vector<std::string> Events() const;

  /// The event log rendered as a RunTrace ("scheduler" root, one span per
  /// event with job/detail attributes) — the observability surface the
  /// acceptance tests read the degradation ladder from.
  std::string TraceJson() const;

  /// Stops admission, drains every admitted job to a terminal state
  /// (the watchdog keeps escalating hung jobs, so the drain is bounded),
  /// then joins the executor and watchdog threads. Idempotent.
  void Stop();

  const SchedulerOptions& options() const;

  /// Shared internal state (opaque). Public only so the implementation's
  /// executor/watchdog thread entry points can name it.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace psk

#endif  // PSK_SERVICE_SCHEDULER_H_
