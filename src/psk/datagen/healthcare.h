#ifndef PSK_DATAGEN_HEALTHCARE_H_
#define PSK_DATAGEN_HEALTHCARE_H_

#include <cstdint>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// A synthetic healthcare microdata matching the paper's running Patient
/// example (§2, Tables 1-3) at arbitrary scale: the motivating scenario of
/// a hospital releasing records to researchers.
///
/// Attributes:
///  - PatientId (identifier)  — synthetic, removed during masking;
///  - Age (int, key)          — 0..99, adult-skewed;
///  - ZipCode (string, key)   — 5-digit codes from a small set of regions
///    ("410xx", "431xx", "482xx"), so the paper's prefix hierarchy is
///    meaningful;
///  - Sex (string, key);
///  - Illness (string, confidential) — 12 diagnoses in 4 categories
///    (Cancer / Chronic / Viral / Injury), category-skewed;
///  - Income (int, confidential) — log-normal-ish, rounded to thousands.
Result<Schema> HealthcareSchema();

/// Hierarchies for the key attributes:
///  - Age: 10-year bands -> <50 / >=50 -> *
///  - ZipCode: 5 digits -> 3-digit prefix -> *   (the paper's Fig. 1/3)
///  - Sex: -> *
Result<HierarchySet> HealthcareHierarchies(const Schema& schema);

/// The Illness value hierarchy (ground diagnosis -> category -> *), for
/// the extended/hierarchical p-sensitivity checks.
Result<std::shared_ptr<TaxonomyHierarchy>> IllnessCategoryHierarchy();

/// Generates `num_rows` synthetic patients, deterministically from `seed`.
Result<Table> HealthcareGenerate(size_t num_rows, uint64_t seed);

}  // namespace psk

#endif  // PSK_DATAGEN_HEALTHCARE_H_
