#include "psk/datagen/paper_tables.h"

#include <string>
#include <vector>

namespace psk {
namespace {

Result<Schema> PatientSchema(bool with_income) {
  std::vector<Attribute> attrs = {
      {"Age", ValueType::kInt64, AttributeRole::kKey},
      {"ZipCode", ValueType::kString, AttributeRole::kKey},
      {"Sex", ValueType::kString, AttributeRole::kKey},
      {"Illness", ValueType::kString, AttributeRole::kConfidential},
  };
  if (with_income) {
    attrs.push_back(
        {"Income", ValueType::kInt64, AttributeRole::kConfidential});
  }
  return Schema::Create(std::move(attrs));
}

}  // namespace

Result<Table> PatientTable1() {
  PSK_ASSIGN_OR_RETURN(Schema schema, PatientSchema(/*with_income=*/false));
  Table table(std::move(schema));
  struct Row {
    int64_t age;
    const char* zip;
    const char* sex;
    const char* illness;
  };
  const Row rows[] = {
      {50, "43102", "M", "Colon Cancer"},
      {30, "43102", "F", "Breast Cancer"},
      {30, "43102", "F", "HIV"},
      {20, "43102", "M", "Diabetes"},
      {20, "43102", "M", "Diabetes"},
      {50, "43102", "M", "Heart Disease"},
  };
  for (const Row& r : rows) {
    PSK_RETURN_IF_ERROR(
        table.AppendRow({Value(r.age), Value(r.zip), Value(r.sex),
                         Value(r.illness)}));
  }
  return table;
}

Result<Table> PatientExternalTable2() {
  PSK_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({{"Name", ValueType::kString, AttributeRole::kIdentifier},
                      {"Age", ValueType::kInt64, AttributeRole::kKey},
                      {"Sex", ValueType::kString, AttributeRole::kKey},
                      {"ZipCode", ValueType::kString, AttributeRole::kKey}}));
  Table table(std::move(schema));
  struct Row {
    const char* name;
    int64_t age;
    const char* sex;
    const char* zip;
  };
  const Row rows[] = {
      {"Sam", 29, "M", "43102"},    {"Gloria", 38, "F", "43102"},
      {"Adam", 51, "M", "43102"},   {"Eric", 29, "M", "43102"},
      {"Tanisha", 34, "F", "43102"}, {"Don", 51, "M", "43102"},
  };
  for (const Row& r : rows) {
    PSK_RETURN_IF_ERROR(table.AppendRow(
        {Value(r.name), Value(r.age), Value(r.sex), Value(r.zip)}));
  }
  return table;
}

namespace {

Result<Table> Table3Impl(int64_t first_income) {
  PSK_ASSIGN_OR_RETURN(Schema schema, PatientSchema(/*with_income=*/true));
  Table table(std::move(schema));
  struct Row {
    int64_t age;
    const char* zip;
    const char* sex;
    const char* illness;
    int64_t income;
  };
  const Row rows[] = {
      {20, "43102", "F", "AIDS", first_income},
      {20, "43102", "F", "AIDS", 50000},
      {20, "43102", "F", "Diabetes", 50000},
      {30, "43102", "M", "Diabetes", 30000},
      {30, "43102", "M", "Diabetes", 40000},
      {30, "43102", "M", "Heart Disease", 30000},
      {30, "43102", "M", "Heart Disease", 40000},
  };
  for (const Row& r : rows) {
    PSK_RETURN_IF_ERROR(
        table.AppendRow({Value(r.age), Value(r.zip), Value(r.sex),
                         Value(r.illness), Value(r.income)}));
  }
  return table;
}

}  // namespace

Result<Table> PatientTable3() { return Table3Impl(50000); }

Result<Table> PatientTable3Fixed() { return Table3Impl(40000); }

Result<Table> Figure3Table() {
  PSK_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({{"Sex", ValueType::kString, AttributeRole::kKey},
                      {"ZipCode", ValueType::kString, AttributeRole::kKey}}));
  Table table(std::move(schema));
  struct Row {
    const char* sex;
    const char* zip;
  };
  const Row rows[] = {
      {"M", "41076"}, {"F", "41099"}, {"M", "41099"}, {"M", "41076"},
      {"F", "43102"}, {"M", "43102"}, {"M", "43102"}, {"F", "43103"},
      {"M", "48202"}, {"M", "48201"},
  };
  for (const Row& r : rows) {
    PSK_RETURN_IF_ERROR(table.AppendRow({Value(r.sex), Value(r.zip)}));
  }
  return table;
}

Result<HierarchySet> Figure3Hierarchies(const Schema& schema) {
  auto sex = std::make_shared<SuppressionHierarchy>("Sex");
  PSK_ASSIGN_OR_RETURN(auto zip, PrefixHierarchy::Create("ZipCode", {0, 2, 5}));
  return HierarchySet::Create(schema, {sex, zip});
}

Result<Table> Example1Table() {
  PSK_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({{"K1", ValueType::kInt64, AttributeRole::kKey},
                      {"K2", ValueType::kString, AttributeRole::kKey},
                      {"S1", ValueType::kString, AttributeRole::kConfidential},
                      {"S2", ValueType::kString, AttributeRole::kConfidential},
                      {"S3", ValueType::kString,
                       AttributeRole::kConfidential}}));
  // Frequencies from Table 5.
  const std::vector<std::vector<size_t>> freqs = {
      {300, 300, 200, 100, 100},
      {500, 300, 100, 40, 35, 25},
      {700, 200, 50, 10, 10, 10, 10, 5, 3, 2},
  };
  const char* prefixes[] = {"A", "B", "C"};
  // Expand each confidential column independently; the checks only look at
  // value frequencies, so per-row pairing is immaterial.
  std::vector<std::vector<std::string>> columns(3);
  for (size_t j = 0; j < 3; ++j) {
    for (size_t i = 0; i < freqs[j].size(); ++i) {
      std::string value = prefixes[j] + std::to_string(i + 1);
      for (size_t c = 0; c < freqs[j][i]; ++c) columns[j].push_back(value);
    }
  }
  Table table(std::move(schema));
  for (size_t row = 0; row < 1000; ++row) {
    PSK_RETURN_IF_ERROR(table.AppendRow(
        {Value(static_cast<int64_t>(row % 25)),
         Value("k" + std::to_string(row % 8)), Value(columns[0][row]),
         Value(columns[1][row]), Value(columns[2][row])}));
  }
  return table;
}

}  // namespace psk
