#ifndef PSK_DATAGEN_ADULT_H_
#define PSK_DATAGEN_ADULT_H_

#include <cstdint>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// Synthetic stand-in for the UCI Adult (Census Income) dataset used in the
/// paper's §4 experiment.
///
/// Substitution note (see DESIGN.md §4): the offline environment has no
/// copy of the UCI repository, so AdultGenerate() synthesizes microdata
/// whose *marginals* are calibrated to Adult: Age in 17..90 with the
/// census-like right skew (74 distinct values, Table 7); MaritalStatus
/// with 7 categories dominated by Married-civ-spouse / Never-married;
/// Race with 5 categories dominated by White; Sex ~2:1 Male. The four
/// confidential attributes Pay, CapitalGain, CapitalLoss and TaxPeriod
/// follow Adult's heavy-tailed profiles (capital gain/loss are ~0 for
/// >90 % of records). These marginals are the only statistics Table 8's
/// experiment depends on: QI marginals drive group sizes at each lattice
/// node, and confidential-value skew drives attribute disclosures and the
/// Condition 2 bound.

/// Schema of the synthetic Adult microdata: key attributes Age (int),
/// MaritalStatus, Race, Sex; confidential attributes Pay, CapitalGain
/// (int), CapitalLoss (int), TaxPeriod.
Result<Schema> AdultSchema();

/// The paper's Table 7 generalization hierarchies:
///  - Age:            74 values -> 10-year ranges -> <50 / >=50 -> *
///  - MaritalStatus:  7 values  -> Single / Married -> *
///  - Race:           5 values  -> White / Black / Other -> White / Other -> *
///  - Sex:            2 values  -> *
/// The induced lattice has 4*3*4*2 = 96 nodes and height 9.
Result<HierarchySet> AdultHierarchies(const Schema& schema);

/// Generates `num_rows` synthetic Adult records, deterministically from
/// `seed`.
Result<Table> AdultGenerate(size_t num_rows, uint64_t seed);

}  // namespace psk

#endif  // PSK_DATAGEN_ADULT_H_
