#include "psk/datagen/healthcare.h"

#include <string>

#include "psk/common/random.h"

namespace psk {
namespace {

struct Diagnosis {
  const char* name;
  const char* category;
  double weight;
};

// Category skew mirrors hospital discharge statistics: chronic conditions
// dominate, injuries and viral infections are less common.
const Diagnosis kDiagnoses[] = {
    {"Diabetes", "Chronic", 0.18},
    {"Heart Disease", "Chronic", 0.16},
    {"Hypertension", "Chronic", 0.14},
    {"Asthma", "Chronic", 0.08},
    {"Colon Cancer", "Cancer", 0.07},
    {"Breast Cancer", "Cancer", 0.07},
    {"Lung Cancer", "Cancer", 0.05},
    {"HIV", "Viral", 0.05},
    {"Hepatitis", "Viral", 0.06},
    {"Influenza", "Viral", 0.06},
    {"Fracture", "Injury", 0.05},
    {"Burn", "Injury", 0.03},
};

// Three metropolitan regions; suffixes fill in the low two digits.
const char* kZipPrefixes[] = {"410", "431", "482"};
const double kZipRegionWeights[] = {0.4, 0.38, 0.22};

}  // namespace

Result<Schema> HealthcareSchema() {
  return Schema::Create(
      {{"PatientId", ValueType::kString, AttributeRole::kIdentifier},
       {"Age", ValueType::kInt64, AttributeRole::kKey},
       {"ZipCode", ValueType::kString, AttributeRole::kKey},
       {"Sex", ValueType::kString, AttributeRole::kKey},
       {"Illness", ValueType::kString, AttributeRole::kConfidential},
       {"Income", ValueType::kInt64, AttributeRole::kConfidential}});
}

Result<HierarchySet> HealthcareHierarchies(const Schema& schema) {
  PSK_ASSIGN_OR_RETURN(
      auto age,
      IntervalHierarchy::Create(
          "Age", {IntervalHierarchy::Level::Bands(10),
                  IntervalHierarchy::Level::Cuts({50}),
                  IntervalHierarchy::Level::Top()}));
  PSK_ASSIGN_OR_RETURN(auto zip,
                       PrefixHierarchy::Create("ZipCode", {0, 2, 5}));
  auto sex = std::make_shared<SuppressionHierarchy>("Sex");
  return HierarchySet::Create(schema, {age, zip, sex});
}

Result<std::shared_ptr<TaxonomyHierarchy>> IllnessCategoryHierarchy() {
  TaxonomyHierarchy::Builder builder("Illness", /*num_levels=*/3);
  for (const Diagnosis& d : kDiagnoses) {
    builder.AddValue(d.name, {d.category, "*"});
  }
  return builder.Build();
}

Result<Table> HealthcareGenerate(size_t num_rows, uint64_t seed) {
  PSK_ASSIGN_OR_RETURN(Schema schema, HealthcareSchema());
  Table table(std::move(schema));
  Rng rng(seed);

  std::vector<double> diagnosis_weights;
  for (const Diagnosis& d : kDiagnoses) diagnosis_weights.push_back(d.weight);
  std::vector<double> region_weights(std::begin(kZipRegionWeights),
                                     std::end(kZipRegionWeights));

  for (size_t row = 0; row < num_rows; ++row) {
    // Adult-skewed age with pediatric and geriatric tails.
    int64_t age;
    double u = rng.UniformDouble();
    if (u < 0.08) {
      age = rng.UniformInt(0, 17);
    } else if (u < 0.85) {
      age = rng.UniformInt(18, 69);
    } else {
      age = rng.UniformInt(70, 99);
    }

    size_t region = rng.PickWeighted(region_weights);
    // Two-digit suffix from a small pool per region keeps group sizes
    // realistic (a handful of patients per full zip code).
    int64_t suffix = rng.UniformInt(0, 19);
    std::string zip = std::string(kZipPrefixes[region]) +
                      (suffix < 10 ? "0" : "") + std::to_string(suffix);

    const Diagnosis& diagnosis =
        kDiagnoses[rng.PickWeighted(diagnosis_weights)];

    // Income in thousands, right-skewed around ~40k.
    double base = 15.0 + 60.0 * rng.UniformDouble() * rng.UniformDouble();
    int64_t income = static_cast<int64_t>(base) * 1000;

    PSK_RETURN_IF_ERROR(table.AppendRow(
        {Value("P" + std::to_string(100000 + row)), Value(age),
         Value(std::move(zip)), Value(rng.Bernoulli(0.52) ? "F" : "M"),
         Value(diagnosis.name), Value(income)}));
  }
  return table;
}

}  // namespace psk
