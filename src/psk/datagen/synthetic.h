#ifndef PSK_DATAGEN_SYNTHETIC_H_
#define PSK_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// Generic workload generator for benchmarks and property tests: arbitrary
/// numbers of key and confidential attributes with controllable
/// cardinality and skew.

/// Specification of one synthetic attribute.
struct SyntheticAttribute {
  std::string name;
  AttributeRole role = AttributeRole::kKey;
  /// Number of distinct values ("<name>_v0" ... "<name>_v{c-1}").
  size_t cardinality = 10;
  /// Zipf exponent; 0 = uniform, larger = more skew toward low ranks.
  double zipf_theta = 0.0;
  /// Levels of the generated balanced hierarchy, including the ground
  /// domain and the top "*" (>= 2). Level l groups values by
  /// rank / fanout^l.
  int hierarchy_levels = 3;
};

/// Specification of a synthetic microdata.
struct SyntheticSpec {
  size_t num_rows = 1000;
  std::vector<SyntheticAttribute> attributes;
};

/// A generated microdata plus its hierarchies (for the key attributes).
struct SyntheticData {
  Table table;
  HierarchySet hierarchies;
};

/// Generates a table and a matching hierarchy per key attribute,
/// deterministically from `seed`. The hierarchy for a key attribute with
/// cardinality c and L levels groups ground values into
/// ceil(c / fanout^l) buckets at level l, where fanout = ceil(c^(1/(L-1)));
/// the top level is always the single group "*".
Result<SyntheticData> SyntheticGenerate(const SyntheticSpec& spec,
                                        uint64_t seed);

/// A ready-made spec: `num_key` key attributes of cardinality `key_card`
/// and `num_conf` confidential attributes of cardinality `conf_card` with
/// skew `conf_theta`.
SyntheticSpec MakeUniformSpec(size_t num_rows, size_t num_key,
                              size_t key_card, size_t num_conf,
                              size_t conf_card, double conf_theta = 0.5);

}  // namespace psk

#endif  // PSK_DATAGEN_SYNTHETIC_H_
