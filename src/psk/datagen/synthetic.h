#ifndef PSK_DATAGEN_SYNTHETIC_H_
#define PSK_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psk/common/random.h"
#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// Generic workload generator for benchmarks and property tests: arbitrary
/// numbers of key and confidential attributes with controllable
/// cardinality and skew.

/// Specification of one synthetic attribute.
struct SyntheticAttribute {
  std::string name;
  AttributeRole role = AttributeRole::kKey;
  /// Number of distinct values ("<name>_v0" ... "<name>_v{c-1}").
  size_t cardinality = 10;
  /// Zipf exponent; 0 = uniform, larger = more skew toward low ranks.
  double zipf_theta = 0.0;
  /// Levels of the generated balanced hierarchy, including the ground
  /// domain and the top "*" (>= 2). Level l groups values by
  /// rank / fanout^l.
  int hierarchy_levels = 3;
};

/// Specification of a synthetic microdata.
struct SyntheticSpec {
  size_t num_rows = 1000;
  std::vector<SyntheticAttribute> attributes;
};

/// A generated microdata plus its hierarchies (for the key attributes).
struct SyntheticData {
  Table table;
  HierarchySet hierarchies;
};

/// Streaming producer of synthetic rows in columnar IngestChunk batches.
///
/// Draws are made row-major (attributes in spec order within a row) from a
/// single Rng, so for a given (spec, seed) the concatenation of all chunks
/// is byte-identical to the table SyntheticGenerate builds — regardless of
/// how the caller sizes its NextChunk requests. This makes the generator a
/// drop-in source for Table::AppendChunk / Anonymizer ingest loops at row
/// counts that should never be materialized as one std::vector<Value> per
/// row: the peak transient is one chunk, not the table.
class SyntheticChunkGenerator {
 public:
  /// Validates the spec and builds the schema. The generator is
  /// self-contained (copies the spec).
  static Result<SyntheticChunkGenerator> Create(const SyntheticSpec& spec,
                                                uint64_t seed);

  const Schema& schema() const { return schema_; }

  /// Fills `chunk` with up to `max_rows` rows (shaped for schema());
  /// returns the number produced, 0 once spec.num_rows have been drawn.
  /// Requires max_rows > 0.
  Result<size_t> NextChunk(size_t max_rows, IngestChunk* chunk);

  /// Rows produced so far across all chunks.
  size_t rows_generated() const { return rows_generated_; }

  /// The balanced hierarchy set for the spec's key attributes — the same
  /// set SyntheticGenerate returns. Independent of generation progress.
  Result<HierarchySet> BuildHierarchies() const;

 private:
  SyntheticChunkGenerator(SyntheticSpec spec, Schema schema, uint64_t seed)
      : spec_(std::move(spec)), schema_(std::move(schema)), rng_(seed) {}

  SyntheticSpec spec_;
  Schema schema_;
  Rng rng_;
  size_t rows_generated_ = 0;
};

/// Generates a table and a matching hierarchy per key attribute,
/// deterministically from `seed`. The hierarchy for a key attribute with
/// cardinality c and L levels groups ground values into
/// ceil(c / fanout^l) buckets at level l, where fanout = ceil(c^(1/(L-1)));
/// the top level is always the single group "*".
Result<SyntheticData> SyntheticGenerate(const SyntheticSpec& spec,
                                        uint64_t seed);

/// A ready-made spec: `num_key` key attributes of cardinality `key_card`
/// and `num_conf` confidential attributes of cardinality `conf_card` with
/// skew `conf_theta`.
SyntheticSpec MakeUniformSpec(size_t num_rows, size_t num_key,
                              size_t key_card, size_t num_conf,
                              size_t conf_card, double conf_theta = 0.5);

}  // namespace psk

#endif  // PSK_DATAGEN_SYNTHETIC_H_
