#include "psk/datagen/adult.h"

#include <cmath>
#include <string>
#include <vector>

#include "psk/common/random.h"

namespace psk {
namespace {

struct WeightedCategory {
  const char* value;
  double weight;
};

// Marginals calibrated to the UCI Adult dataset (train split).
const WeightedCategory kMaritalStatus[] = {
    {"Married-civ-spouse", 0.4599},  {"Never-married", 0.3292},
    {"Divorced", 0.1363},            {"Separated", 0.0315},
    {"Widowed", 0.0305},             {"Married-spouse-absent", 0.0119},
    {"Married-AF-spouse", 0.0007},
};

const WeightedCategory kRace[] = {
    {"White", 0.8543},
    {"Black", 0.0959},
    {"Asian-Pac-Islander", 0.0319},
    {"Amer-Indian-Eskimo", 0.0096},
    {"Other", 0.0083},
};

const WeightedCategory kSex[] = {
    {"Male", 0.6692},
    {"Female", 0.3308},
};

// Pay: hourly-pay band, moderately skewed (stands in for the processed
// "Pay" attribute of the paper's Adult variant).
const WeightedCategory kPay[] = {
    {"P10", 0.29}, {"P20", 0.22}, {"P30", 0.16}, {"P40", 0.12},
    {"P50", 0.09}, {"P60", 0.06}, {"P70", 0.04}, {"P80", 0.02},
};

// TaxPeriod: filing period, 4 categories, dominated by annual filers.
const WeightedCategory kTaxPeriod[] = {
    {"Annual", 0.70},
    {"Quarterly", 0.15},
    {"Monthly", 0.10},
    {"Weekly", 0.05},
};

// Non-zero capital gain values observed in Adult (a subset); ~8.4 % of
// records carry one of these, the rest are 0.
const int64_t kCapitalGainValues[] = {
    594,   2174,  2407,  3103,  4386,  5013,  5178,  7298,
    7688,  8614,  10520, 13550, 14084, 15024, 20051, 99999,
};

// Non-zero capital loss values; ~4.7 % of records.
const int64_t kCapitalLossValues[] = {
    1340, 1408, 1485, 1590, 1602, 1672, 1740, 1848, 1887, 1902, 1977, 2415,
};

template <size_t N>
std::vector<double> Weights(const WeightedCategory (&categories)[N]) {
  std::vector<double> weights;
  weights.reserve(N);
  for (const WeightedCategory& c : categories) weights.push_back(c.weight);
  return weights;
}

template <size_t N>
Value Sample(Rng& rng, const WeightedCategory (&categories)[N],
             const std::vector<double>& weights) {
  return Value(categories[rng.PickWeighted(weights)].value);
}

// Census-like age: right-skewed over 17..90 with a mode in the 30s.
int64_t SampleAge(Rng& rng) {
  // Sum of two uniforms gives a triangular bump; stretching the tail with
  // an occasional uniform draw reproduces the long right tail.
  double u = rng.UniformDouble();
  double base;
  if (u < 0.9) {
    base = 17.0 + 0.5 * (rng.UniformDouble() + rng.UniformDouble()) * 46.0;
  } else {
    base = 60.0 + rng.UniformDouble() * 30.0;
  }
  int64_t age = static_cast<int64_t>(base);
  if (age < 17) age = 17;
  if (age > 90) age = 90;
  return age;
}

}  // namespace

Result<Schema> AdultSchema() {
  return Schema::Create(
      {{"Age", ValueType::kInt64, AttributeRole::kKey},
       {"MaritalStatus", ValueType::kString, AttributeRole::kKey},
       {"Race", ValueType::kString, AttributeRole::kKey},
       {"Sex", ValueType::kString, AttributeRole::kKey},
       {"Pay", ValueType::kString, AttributeRole::kConfidential},
       {"CapitalGain", ValueType::kInt64, AttributeRole::kConfidential},
       {"CapitalLoss", ValueType::kInt64, AttributeRole::kConfidential},
       {"TaxPeriod", ValueType::kString, AttributeRole::kConfidential}});
}

Result<HierarchySet> AdultHierarchies(const Schema& schema) {
  PSK_ASSIGN_OR_RETURN(
      auto age,
      IntervalHierarchy::Create(
          "Age", {IntervalHierarchy::Level::Bands(10),
                  IntervalHierarchy::Level::Cuts({50}),
                  IntervalHierarchy::Level::Top()}));

  TaxonomyHierarchy::Builder marital("MaritalStatus", /*num_levels=*/3);
  marital.AddValue("Married-civ-spouse", {"Married", "*"});
  marital.AddValue("Married-spouse-absent", {"Married", "*"});
  marital.AddValue("Married-AF-spouse", {"Married", "*"});
  marital.AddValue("Never-married", {"Single", "*"});
  marital.AddValue("Divorced", {"Single", "*"});
  marital.AddValue("Separated", {"Single", "*"});
  marital.AddValue("Widowed", {"Single", "*"});
  PSK_ASSIGN_OR_RETURN(auto marital_h, marital.Build());

  TaxonomyHierarchy::Builder race("Race", /*num_levels=*/4);
  race.AddValue("White", {"White", "White", "*"});
  race.AddValue("Black", {"Black", "Other", "*"});
  race.AddValue("Asian-Pac-Islander", {"Other", "Other", "*"});
  race.AddValue("Amer-Indian-Eskimo", {"Other", "Other", "*"});
  race.AddValue("Other", {"Other", "Other", "*"});
  PSK_ASSIGN_OR_RETURN(auto race_h, race.Build());

  auto sex = std::make_shared<SuppressionHierarchy>("Sex");

  return HierarchySet::Create(schema, {age, marital_h, race_h, sex});
}

Result<Table> AdultGenerate(size_t num_rows, uint64_t seed) {
  PSK_ASSIGN_OR_RETURN(Schema schema, AdultSchema());
  Table table(std::move(schema));
  Rng rng(seed);

  const std::vector<double> marital_weights = Weights(kMaritalStatus);
  const std::vector<double> race_weights = Weights(kRace);
  const std::vector<double> sex_weights = Weights(kSex);
  const std::vector<double> pay_weights = Weights(kPay);
  const std::vector<double> tax_weights = Weights(kTaxPeriod);

  constexpr size_t kNumGains =
      sizeof(kCapitalGainValues) / sizeof(kCapitalGainValues[0]);
  constexpr size_t kNumLosses =
      sizeof(kCapitalLossValues) / sizeof(kCapitalLossValues[0]);

  for (size_t row = 0; row < num_rows; ++row) {
    int64_t gain = 0;
    if (rng.Bernoulli(0.084)) {
      // Zipf over the sorted gain values keeps the small gains dominant.
      gain = kCapitalGainValues[rng.Zipf(kNumGains, 1.1)];
    }
    int64_t loss = 0;
    if (rng.Bernoulli(0.047)) {
      loss = kCapitalLossValues[rng.Zipf(kNumLosses, 0.8)];
    }
    PSK_RETURN_IF_ERROR(table.AppendRow(
        {Value(SampleAge(rng)), Sample(rng, kMaritalStatus, marital_weights),
         Sample(rng, kRace, race_weights), Sample(rng, kSex, sex_weights),
         Sample(rng, kPay, pay_weights), Value(gain), Value(loss),
         Sample(rng, kTaxPeriod, tax_weights)}));
  }
  return table;
}

}  // namespace psk
