#include "psk/datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "psk/common/random.h"

namespace psk {
namespace {

// Balanced taxonomy over c ranked values: level l merges fanout^l
// consecutive ranks into one bucket; the top level is "*".
Result<std::shared_ptr<TaxonomyHierarchy>> BuildBalancedHierarchy(
    const SyntheticAttribute& attr) {
  if (attr.hierarchy_levels < 2) {
    return Status::InvalidArgument(
        "hierarchy_levels must be >= 2 for attribute " + attr.name);
  }
  int inner_levels = attr.hierarchy_levels - 2;  // between ground and "*"
  double fanout = 2.0;
  if (inner_levels > 0) {
    fanout = std::max(
        2.0, std::ceil(std::pow(static_cast<double>(attr.cardinality),
                                1.0 / (inner_levels + 1))));
  }
  TaxonomyHierarchy::Builder builder(attr.name, attr.hierarchy_levels);
  for (size_t rank = 0; rank < attr.cardinality; ++rank) {
    std::vector<std::string> ancestors;
    size_t bucket = rank;
    for (int level = 1; level <= inner_levels; ++level) {
      bucket = static_cast<size_t>(bucket / fanout);
      ancestors.push_back(attr.name + "_g" + std::to_string(level) + "_" +
                          std::to_string(bucket));
    }
    ancestors.push_back("*");
    builder.AddValue(attr.name + "_v" + std::to_string(rank),
                     std::move(ancestors));
  }
  return builder.Build();
}

}  // namespace

Result<SyntheticChunkGenerator> SyntheticChunkGenerator::Create(
    const SyntheticSpec& spec, uint64_t seed) {
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("spec has no attributes");
  }
  std::vector<Attribute> schema_attrs;
  schema_attrs.reserve(spec.attributes.size());
  for (const SyntheticAttribute& attr : spec.attributes) {
    if (attr.cardinality == 0) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has zero cardinality");
    }
    schema_attrs.push_back({attr.name, ValueType::kString, attr.role});
  }
  PSK_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(schema_attrs)));
  return SyntheticChunkGenerator(spec, std::move(schema), seed);
}

Result<size_t> SyntheticChunkGenerator::NextChunk(size_t max_rows,
                                                  IngestChunk* chunk) {
  if (max_rows == 0) return Status::InvalidArgument("max_rows must be > 0");
  size_t remaining = spec_.num_rows - rows_generated_;
  size_t rows = std::min(max_rows, remaining);
  chunk->Reset(schema_, rows);
  // Row-major draw order (attributes inner) is the determinism contract:
  // it matches the legacy one-Rng-per-table row loop exactly, so chunk
  // sizing can never change the generated data.
  for (size_t row = 0; row < rows; ++row) {
    for (size_t c = 0; c < spec_.attributes.size(); ++c) {
      const SyntheticAttribute& attr = spec_.attributes[c];
      size_t rank = rng_.Zipf(attr.cardinality, attr.zipf_theta);
      chunk->columns[c].push_back(
          Value(attr.name + "_v" + std::to_string(rank)));
    }
  }
  rows_generated_ += rows;
  return rows;
}

Result<HierarchySet> SyntheticChunkGenerator::BuildHierarchies() const {
  std::vector<std::shared_ptr<const AttributeHierarchy>> hierarchies;
  for (const SyntheticAttribute& attr : spec_.attributes) {
    if (attr.role != AttributeRole::kKey) continue;
    PSK_ASSIGN_OR_RETURN(auto hierarchy, BuildBalancedHierarchy(attr));
    hierarchies.push_back(std::move(hierarchy));
  }
  return HierarchySet::Create(schema_, std::move(hierarchies));
}

Result<SyntheticData> SyntheticGenerate(const SyntheticSpec& spec,
                                        uint64_t seed) {
  // The eager generator is now a thin drain of the streaming one: same
  // Rng, same draw order, so existing seeds reproduce bit-for-bit.
  PSK_ASSIGN_OR_RETURN(SyntheticChunkGenerator gen,
                       SyntheticChunkGenerator::Create(spec, seed));
  Table table(gen.schema());
  table.ReserveRows(spec.num_rows);
  IngestChunk chunk;
  constexpr size_t kChunkRows = 64 * 1024;
  for (;;) {
    PSK_ASSIGN_OR_RETURN(size_t rows, gen.NextChunk(kChunkRows, &chunk));
    if (rows == 0) break;
    PSK_RETURN_IF_ERROR(table.AppendChunk(&chunk));
  }
  PSK_ASSIGN_OR_RETURN(HierarchySet set, gen.BuildHierarchies());
  return SyntheticData{std::move(table), std::move(set)};
}

SyntheticSpec MakeUniformSpec(size_t num_rows, size_t num_key,
                              size_t key_card, size_t num_conf,
                              size_t conf_card, double conf_theta) {
  SyntheticSpec spec;
  spec.num_rows = num_rows;
  for (size_t i = 0; i < num_key; ++i) {
    SyntheticAttribute attr;
    attr.name = "K" + std::to_string(i + 1);
    attr.role = AttributeRole::kKey;
    attr.cardinality = key_card;
    attr.zipf_theta = 0.0;
    attr.hierarchy_levels = 3;
    spec.attributes.push_back(std::move(attr));
  }
  for (size_t i = 0; i < num_conf; ++i) {
    SyntheticAttribute attr;
    attr.name = "S" + std::to_string(i + 1);
    attr.role = AttributeRole::kConfidential;
    attr.cardinality = conf_card;
    attr.zipf_theta = conf_theta;
    attr.hierarchy_levels = 2;
    spec.attributes.push_back(std::move(attr));
  }
  return spec;
}

}  // namespace psk
