#ifndef PSK_DATAGEN_PAPER_TABLES_H_
#define PSK_DATAGEN_PAPER_TABLES_H_

#include "psk/common/result.h"
#include "psk/hierarchy/hierarchy.h"
#include "psk/table/table.h"

namespace psk {

/// Verbatim datasets from the paper, used by tests, examples, and the
/// benchmarks that must reproduce the paper's numbers exactly.

/// Table 1: the Patient masked microdata satisfying 2-anonymity w.r.t.
/// {Age, ZipCode, Sex}, with Illness confidential.
Result<Table> PatientTable1();

/// Table 2: the external (publicly linkable) information the intruder
/// holds: Name (identifier), Age, Sex, ZipCode.
Result<Table> PatientExternalTable2();

/// Table 3: the masked microdata illustrating p-sensitivity; it satisfies
/// 3-anonymity but is only 1-sensitive (the first group has a single
/// Income value).
Result<Table> PatientTable3();

/// Table 3 with the first tuple's Income changed to 40,000, which lifts
/// the sensitivity to p = 2 (the paper's "if the first tuple would have a
/// different value" remark).
Result<Table> PatientTable3Fixed();

/// Fig. 3: the ten-tuple {Sex, ZipCode} initial microdata used to count,
/// for every lattice node, the tuples that do not satisfy 3-anonymity.
Result<Table> Figure3Table();

/// The hierarchies of the Fig. 3 / Table 4 example: Sex -> {*}; ZipCode
/// 5-digit -> 3-digit prefix -> {*} (two digits removed at once, matching
/// the counts printed in the figure).
Result<HierarchySet> Figure3Hierarchies(const Schema& schema);

/// Example 1: a 1,000-tuple microdata whose three confidential attributes
/// S1, S2, S3 realize the frequency sets of Tables 5-6 exactly
/// (S1: 300,300,200,100,100; S2: 500,300,100,40,35,25;
/// S3: 700,200,50,10,10,10,10,5,3,2). Key attributes K1, K2 are synthetic.
Result<Table> Example1Table();

}  // namespace psk

#endif  // PSK_DATAGEN_PAPER_TABLES_H_
