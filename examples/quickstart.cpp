// Quickstart: load a microdata, mask it to k-anonymity, observe the
// attribute-disclosure problem, then require p-sensitive k-anonymity.
//
// This walks the exact scenario of the paper's §2 (Tables 1-3): a masked
// microdata can be perfectly 2-anonymous and still tell an intruder every
// patient's diagnosis.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "psk/anonymity/kanonymity.h"
#include "psk/anonymity/psensitive.h"
#include "psk/api/anonymizer.h"
#include "psk/datagen/adult.h"
#include "psk/datagen/paper_tables.h"
#include "psk/table/table.h"

namespace {

// Examples abort on error; library code never does.
template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using psk::Table;

  // Table 1 of the paper: the released Patient microdata.
  Table patient = Unwrap(psk::PatientTable1());
  std::cout << "Patient masked microdata (paper Table 1):\n"
            << patient.ToDisplayString() << "\n";

  auto key_indices = patient.schema().KeyIndices();
  auto conf_indices = patient.schema().ConfidentialIndices();

  // It satisfies 2-anonymity: every (Age, ZipCode, Sex) combination occurs
  // at least twice, so no individual can be singled out.
  bool k2 = Unwrap(psk::IsKAnonymous(patient, key_indices, 2));
  std::cout << "2-anonymous? " << (k2 ? "yes" : "no") << "\n";

  // ... and yet the group (20, 43102, M) has a single illness: Diabetes.
  // Anyone known to be in that group is disclosed. p-sensitivity measures
  // exactly this: the minimum number of distinct confidential values per
  // group.
  size_t p = Unwrap(psk::SensitivityP(patient, key_indices, conf_indices));
  std::cout << "sensitivity p = " << p
            << "  (p = 1 means some group has a constant confidential "
               "attribute)\n";
  size_t disclosures =
      Unwrap(psk::CountAttributeDisclosures(patient, key_indices,
                                            conf_indices));
  std::cout << "attribute disclosures: " << disclosures << "\n\n";

  // The paper's Definition 2 asks for p >= 2: Algorithm 1 (basic test).
  auto basic = Unwrap(psk::CheckBasic(patient, /*p=*/2, /*k=*/2));
  std::cout << "2-sensitive 2-anonymity (Algorithm 1): "
            << (basic.satisfied ? "satisfied" : "VIOLATED") << "\n\n";

  // Table 3: 3-anonymous but only 1-sensitive...
  Table t3 = Unwrap(psk::PatientTable3());
  std::cout << "Paper Table 3:\n" << t3.ToDisplayString() << "\n";
  std::cout << "sensitivity p = "
            << Unwrap(psk::SensitivityP(t3, t3.schema().KeyIndices(),
                                        t3.schema().ConfidentialIndices()))
            << "\n";

  // ... while changing a single Income value lifts it to p = 2.
  Table t3_fixed = Unwrap(psk::PatientTable3Fixed());
  std::cout << "after changing the first Income to 40,000: sensitivity p = "
            << Unwrap(psk::SensitivityP(
                   t3_fixed, t3_fixed.schema().KeyIndices(),
                   t3_fixed.schema().ConfidentialIndices()))
            << "\n";

  auto improved = Unwrap(psk::CheckImproved(t3_fixed, /*p=*/2, /*k=*/3));
  std::cout << "2-sensitive 3-anonymity (Algorithm 2): "
            << (improved.satisfied ? "satisfied" : "VIOLATED") << "\n\n";

  // Production runs get a deadline, a fallback chain and the release
  // guard: the run below must answer within 250 ms. If the search cannot
  // finish in time it degrades to greedy clustering and, as a last
  // resort, to full suppression — and whatever is produced is re-verified
  // independently before it is released.
  Table adult = Unwrap(psk::AdultGenerate(/*num_rows=*/2000, /*seed=*/1));
  psk::HierarchySet hierarchies =
      Unwrap(psk::AdultHierarchies(adult.schema()));
  psk::Anonymizer anonymizer(std::move(adult));
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    anonymizer.AddHierarchy(hierarchies.hierarchy_ptr(i));
  }
  anonymizer.set_k(3).set_p(2).set_max_suppression(10);
  anonymizer.set_deadline(std::chrono::milliseconds(250));
  anonymizer.set_fallback_chain({
      psk::AnonymizationAlgorithm::kGreedyCluster,
      psk::AnonymizationAlgorithm::kFullSuppression,
  });
  psk::AnonymizationReport report = Unwrap(anonymizer.Run());
  std::cout << "budgeted run: stage " << report.fallback_stage
            << (report.partial ? " (partial search)" : "")
            << " released k=" << report.achieved_k
            << " p=" << report.achieved_p
            << ", guard: " << report.guard.Summary() << "\n";
  return 0;
}
