// A full anonymization study on the (synthetic) Adult census microdata,
// following the paper's §4 experiment and going one step further:
//
//  1. generate the initial microdata and configure the Table 7 hierarchies;
//  2. find the k-minimal generalization (Samarati binary search) and
//     measure the attribute disclosures k-anonymity leaves behind;
//  3. find the p-k-minimal generalization (Algorithm 3) and verify the
//     disclosures are gone;
//  4. compare utility (discernibility, precision, average group size)
//     between both full-domain solutions and the Mondrian local-recoding
//     baseline.

#include <cstdio>
#include <iostream>

#include "psk/algorithms/mondrian.h"
#include "psk/algorithms/samarati.h"
#include "psk/anonymity/psensitive.h"
#include "psk/datagen/adult.h"
#include "psk/metrics/metrics.h"

namespace {

template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Report(const char* label, const psk::Table& masked,
            uint64_t discernibility, double precision, double avg_group) {
  size_t disclosures = Unwrap(psk::CountAttributeDisclosures(
      masked, masked.schema().KeyIndices(),
      masked.schema().ConfidentialIndices()));
  std::printf("%-28s | rows %-5zu | disclosures %-4zu | DM %-10llu | "
              "Prec %.3f | C_avg %.2f\n",
              label, masked.num_rows(), disclosures,
              static_cast<unsigned long long>(discernibility), precision,
              avg_group);
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 4000;
  size_t k = 3;
  size_t p = 2;
  if (argc > 1) n = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) k = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) p = static_cast<size_t>(std::atoll(argv[3]));

  std::printf("Adult anonymization study: n = %zu, k = %zu, p = %zu\n\n", n,
              k, p);

  psk::Table im = Unwrap(psk::AdultGenerate(n, /*seed=*/1));
  psk::HierarchySet hierarchies = Unwrap(psk::AdultHierarchies(im.schema()));
  psk::GeneralizationLattice lattice(hierarchies);
  std::printf("lattice: %llu nodes, height %d (Table 7 hierarchies)\n\n",
              static_cast<unsigned long long>(lattice.NumNodes()),
              lattice.height());

  auto keys = im.schema().KeyIndices();

  // Step 1: plain k-anonymity (the paper's baseline).
  psk::SearchOptions k_only;
  k_only.k = k;
  k_only.p = 1;
  k_only.max_suppression = 0;
  psk::SearchResult k_result =
      Unwrap(psk::SamaratiSearch(im, hierarchies, k_only));
  if (!k_result.found) {
    std::printf("no k-minimal generalization exists for k = %zu\n", k);
    return 1;
  }
  std::printf("k-minimal generalization:    %s (height %d)\n",
              k_result.node.ToString(hierarchies).c_str(),
              k_result.node.Height());

  // Step 2: p-sensitive k-anonymity (Algorithm 3).
  psk::SearchOptions with_p = k_only;
  with_p.p = p;
  psk::SearchResult p_result =
      Unwrap(psk::SamaratiSearch(im, hierarchies, with_p));
  if (!p_result.found) {
    std::printf("no p-k-minimal generalization exists for p = %zu\n", p);
    return 1;
  }
  std::printf("p-k-minimal generalization:  %s (height %d)\n\n",
              p_result.node.ToString(hierarchies).c_str(),
              p_result.node.Height());

  // Step 3: Mondrian local recoding with the same constraints.
  psk::MondrianOptions mondrian_options;
  mondrian_options.k = k;
  mondrian_options.p = p;
  psk::MondrianResult mondrian =
      Unwrap(psk::MondrianAnonymize(im, mondrian_options));

  // Step 4: compare.
  Report("k-anonymity (full domain)", k_result.masked,
         Unwrap(psk::DiscernibilityMetric(
             k_result.masked, k_result.masked.schema().KeyIndices(),
             k_result.suppressed, n)),
         psk::Precision(k_result.node, hierarchies),
         Unwrap(psk::NormalizedAvgGroupSize(
             k_result.masked, k_result.masked.schema().KeyIndices(), k)));
  Report("p-sensitive k (full domain)", p_result.masked,
         Unwrap(psk::DiscernibilityMetric(
             p_result.masked, p_result.masked.schema().KeyIndices(),
             p_result.suppressed, n)),
         psk::Precision(p_result.node, hierarchies),
         Unwrap(psk::NormalizedAvgGroupSize(
             p_result.masked, p_result.masked.schema().KeyIndices(), k)));
  Report("p-sensitive k (Mondrian)", mondrian.masked,
         Unwrap(psk::DiscernibilityMetric(
             mondrian.masked, mondrian.masked.schema().KeyIndices(), 0, n)),
         /*precision=*/-0.0,  // not defined for local recoding
         Unwrap(psk::NormalizedAvgGroupSize(
             mondrian.masked, mondrian.masked.schema().KeyIndices(), k)));

  std::printf(
      "\nsearch work: k-only generalized %zu nodes; p-k generalized %zu "
      "nodes (Condition 2 pruned %zu)\n",
      k_result.stats.nodes_generalized, p_result.stats.nodes_generalized,
      p_result.stats.nodes_pruned_condition2);
  std::printf(
      "\nReading: k-anonymity leaves attribute disclosures; requiring p >= 2 "
      "removes them at\nthe cost of a higher lattice node (less precision); "
      "Mondrian buys the same guarantee\nwith far better utility by recoding "
      "locally instead of globally.\n");
  return 0;
}
