// Traced anonymization run: the acceptance scenario for the structured
// run-trace layer (psk/trace). Runs Samarati on a synthetic Adult
// workload at 1, 2 and N worker threads with tracing on, verifies the
// determinism contract (identical span *structure* for every thread
// count) and that the trace's counters agree with the run's SearchStats,
// then exports the N-thread trace as JSON.
//
//   traced_adult [rows] [threads] [trace.json]
//
// Defaults: 4000 rows, 8 threads, ./traced_adult.trace.json. Exits
// nonzero on any contract violation, so CI can gate on it and then
// validate the exported file with `python3 -m json.tool`.

#include <cstdlib>
#include <iostream>
#include <string>

#include "psk/api/anonymizer.h"
#include "psk/datagen/adult.h"
#include "psk/trace/trace.h"

namespace {

// Examples abort on error; library code never does.
template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Require(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "contract violation: " << what << "\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 4000;
  size_t threads = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 8;
  std::string trace_path = argc > 3 ? argv[3] : "traced_adult.trace.json";

  psk::Table table = Unwrap(psk::AdultGenerate(rows, /*seed=*/1));
  psk::HierarchySet hierarchies =
      Unwrap(psk::AdultHierarchies(table.schema()));

  auto run_traced = [&](size_t t) {
    psk::Anonymizer anonymizer(table);
    for (size_t i = 0; i < hierarchies.size(); ++i) {
      anonymizer.AddHierarchy(hierarchies.hierarchy_ptr(i));
    }
    anonymizer.set_k(3).set_p(2).set_max_suppression(rows / 100);
    anonymizer.set_threads(t).set_trace_enabled(true);
    psk::AnonymizationReport report = Unwrap(anonymizer.Run());
    return std::make_pair(std::move(report), anonymizer.last_trace());
  };

  // The determinism contract: span names, nesting, order, counters and
  // attrs are a pure function of the run config — the thread count only
  // moves timings.
  auto [report1, trace1] = run_traced(1);
  std::string signature = trace1->StructureSignature();
  for (size_t t : {size_t{2}, threads}) {
    auto [report_t, trace_t] = run_traced(t);
    Require(trace_t->StructureSignature() == signature,
            "span structure differs between 1 and " + std::to_string(t) +
                " threads");
  }

  // The trace's structural counters mirror the run's SearchStats.
  auto [report, trace] = run_traced(threads);
  const psk::SearchStats& stats = report.stats;
  Require(trace->TotalCounter("nodes_generalized") == stats.nodes_generalized,
          "nodes_generalized counter != SearchStats");
  Require(trace->TotalCounter("heights_probed") == stats.heights_probed,
          "heights_probed counter != SearchStats");
  Require(trace->TotalCounter("nodes_cache_misses") ==
              stats.nodes_cache_misses,
          "nodes_cache_misses counter != SearchStats");

  // The span tree covers the whole run, encode to release.
  for (const char* span : {"encode", "sweep", "probe_height", "materialize",
                           "check_kanonymity", "check_psensitivity",
                           "scorecard", "outcome=released"}) {
    Require(signature.find(span) != std::string::npos,
            std::string("span tree is missing ") + span);
  }

  psk::Status written = trace->WriteJsonFile(trace_path);
  if (!written.ok()) {
    std::cerr << "error: " << written << "\n";
    return 1;
  }

  std::cout << "rows=" << rows << " threads=" << threads
            << " k=3 p=2 algorithm=samarati\n"
            << "achieved k=" << report.achieved_k
            << " p=" << report.achieved_p
            << " suppressed=" << report.suppressed << "\n"
            << "nodes generalized=" << stats.nodes_generalized
            << " heights probed=" << stats.heights_probed << "\n"
            << "span structure identical across 1/2/" << threads
            << " threads; counters match SearchStats\n"
            << "wrote " << trace_path << "\n";
  return 0;
}
