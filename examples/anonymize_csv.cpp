// anonymize_csv — command-line anonymizer over CSV files.
//
// Flag usage:
//   anonymize_csv --input data.csv --output masked.csv
//     --attr "Name:string:identifier" --attr "Age:int64:key"
//     --attr "ZipCode:string:key" --attr "Illness:string:confidential"
//     --hierarchy "Age=interval:bands-10/cuts-50/top"
//     --hierarchy "ZipCode=prefix:0,2,5"
//     --k 3 --p 2 --ts 5 --algorithm samarati
//
// Config usage (see psk/api/spec_parser.h for the file format):
//   anonymize_csv --config release.cfg
//
// Hierarchy specs: suppress | prefix:0,2,5 |
// interval:bands-10/cuts-50/top | file:PATH[;SEP].
// Algorithms: samarati | incognito | bottomup | exhaustive | mondrian |
// cluster | ola.
//
// Run without arguments for a self-contained demo on the paper's Patient
// data.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "psk/api/anonymizer.h"
#include "psk/common/version.h"
#include "psk/api/spec_parser.h"
#include "psk/table/csv.h"
#include "psk/table/stats.h"

namespace {

template <typename T>
T Unwrap(psk::Result<T> result, const char* context) {
  if (!result.ok()) {
    std::cerr << "error (" << context << "): " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void PrintReport(const psk::AnonymizationReport& report) {
  std::printf("--- anonymization report ---\n");
  if (report.node.has_value()) {
    std::printf("generalization node: %s (height %d)\n",
                report.node->ToString().c_str(), report.node->Height());
  } else {
    std::printf("generalization: local recoding\n");
  }
  std::printf("released rows:       %zu (suppressed %zu)\n",
              report.masked.num_rows(), report.suppressed);
  std::printf("achieved k:          %zu\n", report.achieved_k);
  std::printf("achieved p:          %zu\n", report.achieved_p);
  std::printf("attribute leaks:     %zu\n", report.attribute_disclosures);
  std::printf("re-id risk:          %.4f\n", report.reidentification_risk);
  std::printf("discernibility:      %llu\n",
              static_cast<unsigned long long>(report.discernibility));
  std::printf("precision:           %.3f\n", report.precision);
}

int RunConfig(psk::ReleaseConfig config) {
  if (config.input.empty()) {
    std::cerr << "no input file configured\n";
    return 2;
  }
  psk::Schema schema =
      Unwrap(psk::Schema::Create(config.attributes), "schema");
  psk::Table im =
      Unwrap(psk::ReadCsvFile(config.input, schema), "read input");
  std::printf("loaded %s:\n%s\n", config.input.c_str(),
              Unwrap(psk::ComputeTableStats(im), "stats")
                  .ToDisplayString()
                  .c_str());

  psk::Anonymizer anonymizer(im);
  for (const auto& hierarchy : config.hierarchies) {
    anonymizer.AddHierarchy(hierarchy);
  }
  anonymizer.set_k(config.k)
      .set_p(config.p)
      .set_max_suppression(config.max_suppression)
      .set_algorithm(config.algorithm);

  psk::AnonymizationReport report = Unwrap(anonymizer.Run(), "anonymize");
  PrintReport(report);
  if (!config.output.empty()) {
    psk::Status status = psk::WriteCsvFile(report.masked, config.output);
    if (!status.ok()) {
      std::cerr << "error writing output: " << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", config.output.c_str());
  } else {
    std::printf("\n%s", report.masked.ToDisplayString(30).c_str());
  }
  return 0;
}

int Demo() {
  std::printf("No arguments given; running the built-in demo "
              "(release.cfg equivalent on paper Table 3 data).\n\n");
  // Exercise the config path end to end with an inline configuration.
  psk::ReleaseConfig config = Unwrap(
      psk::ParseReleaseConfig(
          "k = 3\np = 2\nts = 1\nalgorithm = samarati\n"
          "attr Age = int64 key hierarchy=interval:bands-10/top\n"
          "attr ZipCode = string key hierarchy=prefix:0,2,5\n"
          "attr Sex = string key hierarchy=suppress\n"
          "attr Illness = string confidential\n"
          "attr Income = int64 confidential\n"),
      "demo config");
  psk::Schema schema =
      Unwrap(psk::Schema::Create(config.attributes), "demo schema");
  psk::Table im = Unwrap(
      psk::ReadCsvString(
          "Age,ZipCode,Sex,Illness,Income\n"
          "20,43102,F,AIDS,40000\n20,43102,F,AIDS,50000\n"
          "20,43102,F,Diabetes,50000\n30,43102,M,Diabetes,30000\n"
          "30,43102,M,Diabetes,40000\n30,43102,M,Heart Disease,30000\n"
          "30,43102,M,Heart Disease,40000\n",
          schema),
      "demo data");
  psk::Anonymizer anonymizer(im);
  for (const auto& hierarchy : config.hierarchies) {
    anonymizer.AddHierarchy(hierarchy);
  }
  anonymizer.set_k(config.k).set_p(config.p).set_max_suppression(
      config.max_suppression);
  psk::AnonymizationReport report = Unwrap(anonymizer.Run(), "anonymize");
  PrintReport(report);
  std::printf("\nmasked microdata:\n%s",
              report.masked.ToDisplayString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return Demo();

  psk::ReleaseConfig config;
  bool from_config_file = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--version") {
      std::printf("psk-anonymity %s\n", psk::Version());
      return 0;
    }
    if (flag == "--config") {
      config = Unwrap(psk::ParseReleaseConfigFile(next()), "config");
      from_config_file = true;
    } else if (flag == "--input") {
      config.input = next();
    } else if (flag == "--output") {
      config.output = next();
    } else if (flag == "--attr") {
      config.attributes.push_back(
          Unwrap(psk::ParseAttributeSpec(next()), "attr"));
    } else if (flag == "--hierarchy") {
      std::string spec = next();
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "hierarchy spec must be ATTR=SPEC: " << spec << "\n";
        return 2;
      }
      config.hierarchies.push_back(Unwrap(
          psk::ParseHierarchySpec(spec.substr(0, eq), spec.substr(eq + 1)),
          "hierarchy"));
    } else if (flag == "--k") {
      config.k = static_cast<size_t>(std::atoll(next().c_str()));
    } else if (flag == "--p") {
      config.p = static_cast<size_t>(std::atoll(next().c_str()));
    } else if (flag == "--ts") {
      config.max_suppression =
          static_cast<size_t>(std::atoll(next().c_str()));
    } else if (flag == "--algorithm") {
      config.algorithm =
          Unwrap(psk::ParseAlgorithmName(next()), "algorithm");
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return 2;
    }
  }
  if (!from_config_file && config.attributes.empty()) {
    std::cerr << "--config or at least one --attr is required "
                 "(run without arguments for a demo)\n";
    return 2;
  }
  return RunConfig(std::move(config));
}
