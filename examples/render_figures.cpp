// Regenerates the paper's Figures 1 and 2 as Graphviz files:
//
//   fig1_sex.dot / fig1_zipcode.dot   value generalization hierarchies
//   fig2_lattice.dot                  the <Sex, ZipCode> lattice, with the
//                                     Table 4 (TS = 0) minimal node filled
//
// Render with e.g.:  dot -Tpng fig2_lattice.dot -o fig2.png

#include <cstdio>
#include <fstream>
#include <iostream>

#include "psk/algorithms/exhaustive.h"
#include "psk/datagen/paper_tables.h"
#include "psk/lattice/dot_export.h"

namespace {

template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  psk::Table fig3 = Unwrap(psk::Figure3Table());
  psk::HierarchySet hierarchies =
      Unwrap(psk::Figure3Hierarchies(fig3.schema()));

  // Figure 1: the two value generalization hierarchies over the observed
  // ground values.
  std::vector<psk::Value> sexes = {psk::Value("M"), psk::Value("F")};
  WriteFile("fig1_sex.dot",
            Unwrap(psk::HierarchyToDot(hierarchies.hierarchy(0), sexes)));
  std::vector<psk::Value> zips;
  for (const char* zip :
       {"41076", "41099", "43102", "43103", "48201", "48202"}) {
    zips.push_back(psk::Value(zip));
  }
  WriteFile("fig1_zipcode.dot",
            Unwrap(psk::HierarchyToDot(hierarchies.hierarchy(1), zips)));

  // Figure 2: the lattice; fill the 3-minimal generalization at TS = 0
  // (Table 4's first row) so the diagram also tells the Table 4 story.
  psk::GeneralizationLattice lattice(hierarchies);
  psk::SearchOptions options;
  options.k = 3;
  psk::MinimalSetResult minimal =
      Unwrap(psk::ExhaustiveSearch(fig3, hierarchies, options));
  WriteFile("fig2_lattice.dot",
            psk::LatticeToDot(lattice, hierarchies, minimal.minimal_nodes));

  std::printf("\nrender with: dot -Tpng fig2_lattice.dot -o fig2.png\n");
  return 0;
}
