// The §2 linkage attack, end to end: an intruder holding public external
// information (paper Table 2) joins it against a released 2-anonymous
// microdata (paper Table 1) and learns confidential values without
// re-identifying anyone — then the same attack is repeated against a
// 2-sensitive release and comes up empty.

#include <cstdio>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "psk/anonymity/psensitive.h"
#include "psk/datagen/paper_tables.h"
#include "psk/table/group_by.h"
#include "psk/table/table.h"

namespace {

template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

// The intruder knows Age was generalized to multiples of 10 in the release.
psk::Value GeneralizeAge(const psk::Value& age) {
  return psk::Value(age.AsInt64() / 10 * 10);
}

// Simulates the attack: for every named individual in `external`, find the
// release tuples matching their (generalized) key attributes and collect
// the confidential values they could have. A singleton set = attribute
// disclosure.
void Attack(const psk::Table& external, const psk::Table& release) {
  size_t name = Unwrap(external.schema().IndexOf("Name"));
  size_t e_age = Unwrap(external.schema().IndexOf("Age"));
  size_t e_sex = Unwrap(external.schema().IndexOf("Sex"));
  size_t e_zip = Unwrap(external.schema().IndexOf("ZipCode"));
  size_t r_age = Unwrap(release.schema().IndexOf("Age"));
  size_t r_sex = Unwrap(release.schema().IndexOf("Sex"));
  size_t r_zip = Unwrap(release.schema().IndexOf("ZipCode"));
  size_t r_ill = Unwrap(release.schema().IndexOf("Illness"));

  size_t disclosed = 0;
  for (size_t e = 0; e < external.num_rows(); ++e) {
    psk::Value age = GeneralizeAge(external.Get(e, e_age));
    std::set<std::string> candidates;
    size_t matches = 0;
    for (size_t r = 0; r < release.num_rows(); ++r) {
      if (release.Get(r, r_age) == age &&
          release.Get(r, r_sex) == external.Get(e, e_sex) &&
          release.Get(r, r_zip) == external.Get(e, e_zip)) {
        ++matches;
        candidates.insert(release.Get(r, r_ill).ToString());
      }
    }
    std::printf("  %-8s -> %zu matching tuples, possible illnesses: {",
                external.Get(e, name).ToString().c_str(), matches);
    bool first = true;
    for (const std::string& c : candidates) {
      std::printf("%s%s", first ? "" : ", ", c.c_str());
      first = false;
    }
    std::printf("}%s\n",
                candidates.size() == 1 ? "   <-- ATTRIBUTE DISCLOSED" : "");
    if (candidates.size() == 1) ++disclosed;
  }
  std::printf("  => %zu of %zu individuals have their illness disclosed\n\n",
              disclosed, external.num_rows());
}

}  // namespace

int main() {
  psk::Table release = Unwrap(psk::PatientTable1());
  psk::Table external = Unwrap(psk::PatientExternalTable2());

  std::cout << "Released 2-anonymous microdata (paper Table 1):\n"
            << release.ToDisplayString() << "\n";
  std::cout << "Intruder's external information (paper Table 2):\n"
            << external.ToDisplayString() << "\n";

  std::cout << "Linkage attack against the 2-anonymous release:\n";
  Attack(external, release);
  std::cout << "Nobody was re-identified (every join hit >= 2 tuples), yet "
               "Sam and Eric's\ndiagnosis leaked: k-anonymity does not stop "
               "attribute disclosure.\n\n";

  // Build a 2-sensitive variant of the release by diversifying the
  // offending group, and attack again.
  psk::Table sensitive = release;
  size_t ill = Unwrap(sensitive.schema().IndexOf("Illness"));
  sensitive.Set(4, ill, psk::Value("Asthma"));  // second Diabetes tuple
  auto keys = sensitive.schema().KeyIndices();
  auto confs = sensitive.schema().ConfidentialIndices();
  std::printf("After diversifying (2-sensitive 2-anonymous, p = %zu):\n",
              Unwrap(psk::SensitivityP(sensitive, keys, confs)));
  std::cout << sensitive.ToDisplayString() << "\n";
  std::cout << "Same attack against the 2-sensitive release:\n";
  Attack(external, sensitive);
  std::cout << "Every individual now has >= 2 possible illnesses: the "
               "attack yields nothing.\n";
  return 0;
}
