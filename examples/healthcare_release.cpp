// A hospital releasing patient microdata to researchers — the motivating
// scenario of the paper's introduction — using the whole library:
//
//  1. generate the patient registry (identifier + QI + diagnoses/income);
//  2. search for the p-k-minimal full-domain generalization;
//  3. audit the release: prosecutor/journalist risk, attribute
//     disclosures, and the *categorical* sensitivity of the extended
//     model (does any group reveal the diagnosis category?);
//  4. compare tuple-deletion suppression with cell-level (local)
//     suppression.

#include <cstdio>
#include <iostream>

#include "psk/algorithms/samarati.h"
#include "psk/anonymity/presence.h"
#include "psk/anonymity/psensitive.h"
#include "psk/datagen/healthcare.h"
#include "psk/generalize/generalize.h"
#include "psk/metrics/metrics.h"
#include "psk/metrics/risk.h"
#include "psk/perturb/perturb.h"

namespace {

template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 2000;
  if (argc > 1) n = static_cast<size_t>(std::atoll(argv[1]));

  psk::Table registry = Unwrap(psk::HealthcareGenerate(n, /*seed=*/2006));
  psk::HierarchySet hierarchies =
      Unwrap(psk::HealthcareHierarchies(registry.schema()));
  std::printf("patient registry: %zu records\n", registry.num_rows());
  std::cout << registry.ToDisplayString(6) << "\n";

  // Step 2: 2-sensitive 4-anonymity with a 1% suppression budget.
  psk::SearchOptions options;
  options.k = 4;
  options.p = 2;
  options.max_suppression = n / 100;
  psk::SearchResult release =
      Unwrap(psk::SamaratiSearch(registry, hierarchies, options));
  if (!release.found) {
    std::printf("no release satisfies 2-sensitive 4-anonymity\n");
    return 1;
  }
  std::printf("release node %s (height %d), %zu rows, %zu suppressed\n\n",
              release.node.ToString(hierarchies).c_str(),
              release.node.Height(), release.masked.num_rows(),
              release.suppressed);
  std::cout << release.masked.ToDisplayString(6) << "\n";

  // Step 3: audit.
  const psk::Table& mm = release.masked;
  auto keys = mm.schema().KeyIndices();
  auto confs = mm.schema().ConfidentialIndices();

  psk::RiskSummary prosecutor =
      Unwrap(psk::ProsecutorRisk(mm, keys, /*threshold=*/0.2));
  std::printf("prosecutor risk:   max %.3f  avg %.3f  at-risk %.1f%%\n",
              prosecutor.max_risk, prosecutor.avg_risk,
              100.0 * prosecutor.fraction_at_risk);

  // Journalist model: the registry is the population the release was
  // sampled (masked) from; compare at the release's generalization level.
  psk::Table population = Unwrap(
      psk::ApplyGeneralization(registry, hierarchies, release.node));
  psk::RiskSummary journalist = Unwrap(psk::JournalistRisk(
      mm, keys, population, population.schema().KeyIndices(), 0.2));
  std::printf("journalist risk:   max %.3f  avg %.3f\n", journalist.max_risk,
              journalist.avg_risk);
  std::printf("marketer risk:     %.4f\n",
              Unwrap(psk::MarketerRisk(mm, keys)));
  std::printf("attribute leaks:   %zu (raw values)\n",
              Unwrap(psk::CountAttributeDisclosures(mm, keys, confs)));

  // The extended model: check diagnosis *categories*. A group may hold
  // {Colon Cancer, Breast Cancer} — 2 distinct raw values, but every
  // member provably has cancer.
  auto illness_hierarchy = Unwrap(psk::IllnessCategoryHierarchy());
  size_t illness = Unwrap(mm.schema().IndexOf("Illness"));
  size_t category_p = Unwrap(psk::HierarchicalSensitivityP(
      mm, keys, illness, *illness_hierarchy, /*level=*/1));
  std::printf("category p:        %zu %s\n", category_p,
              category_p < 2 ? "<-- some group discloses the diagnosis "
                               "CATEGORY (extended p-sensitive model)"
                             : "(no category disclosure)");

  // Step 4: suppression flavors at the same node.
  psk::Table generalized = Unwrap(
      psk::ApplyGeneralization(registry, hierarchies, release.node));
  auto gen_keys = generalized.schema().KeyIndices();
  size_t deleted = 0;
  psk::Table tuple_mode = Unwrap(psk::SuppressUndersizedGroups(
      generalized, gen_keys, options.k, &deleted));
  size_t cells = 0;
  size_t cell_deleted = 0;
  psk::Table cell_mode = Unwrap(psk::SuppressUndersizedGroupCells(
      generalized, gen_keys, options.k, &cells, &cell_deleted));
  std::printf(
      "\nsuppression: tuple deletion removes %zu rows; local (cell) "
      "suppression masks\n%zu key cells and removes only %zu rows "
      "(released rows: %zu vs %zu)\n",
      deleted, cells, cell_deleted, tuple_mode.num_rows(),
      cell_mode.num_rows());

  // Step 5: sampling as an additional layer. Releasing a 50% sample means
  // the intruder no longer knows the target is in the file: the
  // journalist-model risk (measured against the registry as population)
  // drops well below the prosecutor risk, and delta-presence quantifies
  // what membership itself leaks.
  psk::Table sample = Unwrap(psk::SampleRows(registry, 0.5, /*seed=*/77));
  psk::Table sampled_release = Unwrap(
      psk::ApplyGeneralization(sample, hierarchies, release.node));
  auto s_keys = sampled_release.schema().KeyIndices();
  psk::RiskSummary s_prosecutor =
      Unwrap(psk::ProsecutorRisk(sampled_release, s_keys, 0.2));
  psk::RiskSummary s_journalist = Unwrap(psk::JournalistRisk(
      sampled_release, s_keys, population,
      population.schema().KeyIndices(), 0.2));
  psk::DeltaPresence presence = Unwrap(psk::ComputeDeltaPresence(
      sampled_release, s_keys, population,
      population.schema().KeyIndices()));
  std::printf(
      "\nwith 50%% sampling on top (same node): prosecutor max risk %.3f, "
      "journalist max\nrisk %.3f, delta-presence [%.2f, %.2f] — an "
      "intruder is no longer sure the target\nis in the release at all.\n",
      s_prosecutor.max_risk, s_journalist.max_risk, presence.delta_min,
      presence.delta_max);
  return 0;
}
