// Composition (intersection) attack across multiple releases: each release
// on its own satisfies p-sensitive k-anonymity, but an intruder holding
// both can intersect the candidate diagnosis sets and recover values
// neither release discloses alone (cf. Ganta et al. 2008). This
// demonstrates why the data owner must account for *all* releases of the
// same microdata — a limitation the p-sensitive model (like k-anonymity)
// inherits. The heavy lifting is the library's attack simulator
// (psk/attack/linkage.h).

#include <cstdio>
#include <iostream>

#include "psk/anonymity/psensitive.h"
#include "psk/attack/linkage.h"
#include "psk/datagen/healthcare.h"
#include "psk/generalize/generalize.h"

namespace {

template <typename T>
T Unwrap(psk::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  const size_t n = 1500;
  psk::Table registry = Unwrap(psk::HealthcareGenerate(n, /*seed=*/42));
  psk::HierarchySet hierarchies =
      Unwrap(psk::HealthcareHierarchies(registry.schema()));

  // Two incomparable releases: A coarsens Age and ZipCode but keeps Sex;
  // B keeps ZipCode exact but coarsens Age harder and drops Sex.
  psk::LatticeNode node_a{{1, 1, 0}};  // Age -> decades, Zip -> 3-digit
  psk::LatticeNode node_b{{2, 0, 1}};  // Age -> <50/>=50, Zip exact, Sex -> *
  psk::Table release_a = Unwrap(
      psk::ApplyGeneralization(registry, hierarchies, node_a));
  psk::Table release_b = Unwrap(
      psk::ApplyGeneralization(registry, hierarchies, node_b));

  auto sensitivity = [&](const psk::Table& t) {
    return Unwrap(psk::SensitivityP(t, t.schema().KeyIndices(),
                                    {Unwrap(t.schema().IndexOf("Illness"))}));
  };
  std::printf("release A at %s: p = %zu\n",
              node_a.ToString(hierarchies).c_str(), sensitivity(release_a));
  std::printf("release B at %s: p = %zu\n\n",
              node_b.ToString(hierarchies).c_str(), sensitivity(release_b));

  // Worst case: the intruder holds a full population register with every
  // individual's ground-level quasi-identifiers.
  psk::Table external = Unwrap(
      registry.ProjectColumns(registry.schema().KeyIndices()));

  psk::ReleaseView view_a{&release_a, node_a};
  psk::ReleaseView view_b{&release_b, node_b};
  psk::LinkageAttackSummary attack_a = Unwrap(psk::SimulateLinkageAttack(
      view_a, hierarchies, external, "Illness"));
  psk::LinkageAttackSummary attack_b = Unwrap(psk::SimulateLinkageAttack(
      view_b, hierarchies, external, "Illness"));
  psk::LinkageAttackSummary attack_both =
      Unwrap(psk::SimulateIntersectionAttack({view_a, view_b}, hierarchies,
                                             external, "Illness"));

  std::printf("individuals whose diagnosis is pinned down exactly:\n");
  std::printf("  release A alone:        %zu / %zu (avg candidate set %.1f)\n",
              attack_a.attribute_disclosures, n, attack_a.avg_candidate_set);
  std::printf("  release B alone:        %zu / %zu (avg candidate set %.1f)\n",
              attack_b.attribute_disclosures, n, attack_b.avg_candidate_set);
  std::printf("  intersecting A and B:   %zu / %zu\n\n",
              attack_both.attribute_disclosures, n);
  std::printf(
      "Each release is 2-sensitive on its own, yet the intersection pins "
      "down %zu\nindividuals: p-sensitive k-anonymity (like k-anonymity) "
      "is a single-release guarantee.\n",
      attack_both.attribute_disclosures);
  return 0;
}
