# find_package(psk) entry point: loads the exported targets and their
# transitive dependencies. Link against psk::all (everything) or the
# individual psk::psk_<module> targets.
include(CMakeFindDependencyMacro)
find_dependency(Threads)
include("${CMAKE_CURRENT_LIST_DIR}/pskTargets.cmake")
